"""scatter / reduce_scatter_block / exscan in both modes, plus edge cases."""

import numpy as np
import pytest

from repro.cluster import MachineConfig
from repro.errors import MPIError
from repro.simmpi import MAX, SUM, World

MODES = ("analytic", "detailed")
SIZES = (1, 2, 3, 4, 7, 8)


def make_world(p, mode):
    return World(MachineConfig(nprocs=p, cores_per_node=2),
                 collective_mode=mode)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_scatter_delivers_slices(mode, p, root):
    root = 0 if root == 0 else p - 1
    w = make_world(p, mode)
    got = {}

    def program(comm):
        values = [f"v{i}" for i in range(p)] if comm.rank == root else None
        out = yield from comm.scatter(values, root=root)
        got[comm.rank] = out

    w.launch(program)
    assert got == {r: f"v{r}" for r in range(p)}


@pytest.mark.parametrize("mode", MODES)
def test_scatter_root_without_values_raises(mode):
    w = make_world(2, mode)

    def program(comm):
        yield from comm.scatter(None, root=0)

    with pytest.raises((MPIError, ValueError)):
        w.launch(program)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("p", SIZES)
def test_reduce_scatter_block_sums_slots(mode, p):
    w = make_world(p, mode)
    got = {}

    def program(comm):
        # rank src contributes (src+1) * 10^dst-ish; use simple sums
        values = [comm.rank + dst for dst in range(p)]
        out = yield from comm.reduce_scatter_block(values, op=SUM)
        got[comm.rank] = out

    w.launch(program)
    # slot dst = sum over src of (src + dst)
    base = p * (p - 1) // 2
    assert got == {r: base + p * r for r in range(p)}


@pytest.mark.parametrize("mode", MODES)
def test_reduce_scatter_block_wrong_length(mode):
    w = make_world(3, mode)

    def program(comm):
        yield from comm.reduce_scatter_block([1, 2])

    with pytest.raises((MPIError, IndexError)):
        w.launch(program)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("p", SIZES)
def test_exscan_prefix_excluding_self(mode, p):
    w = make_world(p, mode)
    got = {}

    def program(comm):
        out = yield from comm.exscan(comm.rank + 1, op=SUM)
        got[comm.rank] = out

    w.launch(program)
    assert got[0] is None
    for r in range(1, p):
        assert got[r] == r * (r + 1) // 2


@pytest.mark.parametrize("mode", MODES)
def test_exscan_max(mode):
    p = 5
    w = make_world(p, mode)
    got = {}

    def program(comm):
        out = yield from comm.exscan((comm.rank * 7) % 5, op=MAX)
        got[comm.rank] = out

    w.launch(program)
    vals = [(r * 7) % 5 for r in range(p)]
    for r in range(1, p):
        assert got[r] == max(vals[:r])


@pytest.mark.parametrize("mode", MODES)
def test_new_collectives_interleave_with_old(mode):
    """Mixed sequences keep their op ordering straight."""
    p = 4
    w = make_world(p, mode)
    got = {}

    def program(comm):
        a = yield from comm.scatter(list(range(p)) if comm.rank == 0 else None)
        b = yield from comm.allreduce(a, op=SUM)
        c = yield from comm.exscan(1, op=SUM)
        d = yield from comm.reduce_scatter_block([b] * p, op=SUM)
        got[comm.rank] = (a, b, c, d)

    w.launch(program)
    total = sum(range(p))
    for r in range(p):
        a, b, c, d = got[r]
        assert a == r
        assert b == total
        assert c == (None if r == 0 else r)
        assert d == p * total


@pytest.mark.parametrize("p", SIZES)
def test_modes_agree_on_scatter_results(p):
    results = {}
    for mode in MODES:
        w = make_world(p, mode)
        got = {}

        def program(comm):
            values = [i * i for i in range(p)] if comm.rank == 1 % p else None
            out = yield from comm.scatter(values, root=1 % p)
            got[comm.rank] = out

        w.launch(program)
        results[mode] = got
    assert results["analytic"] == results["detailed"]
