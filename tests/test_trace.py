"""Direct unit tests for the TraceRecorder (sim/trace.py)."""

from repro.sim.trace import TraceRecorder


class TestRecording:
    def test_records_tuples_in_order(self):
        tr = TraceRecorder()
        tr.record(0.5, "io", {"ost": 1})
        tr.record(1.5, "net", "payload")
        assert tr.records == [(0.5, "io", {"ost": 1}), (1.5, "net", "payload")]
        assert len(tr) == 2
        assert tr.dropped == 0

    def test_category_filtering(self):
        tr = TraceRecorder(categories=["io"])
        tr.record(0.0, "io", "kept")
        tr.record(0.1, "net", "discarded")
        tr.record(0.2, "io", "kept too")
        assert [p for (_, _, p) in tr.records] == ["kept", "kept too"]
        # filtered-out records are not "dropped" — they were never wanted
        assert tr.dropped == 0

    def test_unfiltered_recorder_keeps_every_category(self):
        tr = TraceRecorder()
        for cat in ("io", "net", "sync"):
            tr.record(0.0, cat, None)
        assert len(tr) == 3

    def test_by_category_projects_time_and_payload(self):
        tr = TraceRecorder()
        tr.record(1.0, "io", "a")
        tr.record(2.0, "net", "b")
        tr.record(3.0, "io", "c")
        assert tr.by_category("io") == [(1.0, "a"), (3.0, "c")]
        assert tr.by_category("nothing") == []


class TestTruncation:
    def test_max_records_truncates_and_counts_dropped(self):
        tr = TraceRecorder(max_records=2)
        for i in range(5):
            tr.record(float(i), "io", i)
        assert len(tr) == 2
        assert [p for (_, _, p) in tr.records] == [0, 1]
        assert tr.dropped == 3

    def test_filtered_out_records_do_not_count_against_cap(self):
        tr = TraceRecorder(categories=["io"], max_records=1)
        tr.record(0.0, "net", "ignored")
        tr.record(0.1, "io", "kept")
        tr.record(0.2, "net", "ignored")
        tr.record(0.3, "io", "over cap")
        assert len(tr) == 1
        assert tr.dropped == 1

    def test_clear_resets_records_and_dropped(self):
        tr = TraceRecorder(max_records=1)
        tr.record(0.0, "io", "a")
        tr.record(0.1, "io", "b")
        assert tr.dropped == 1
        tr.clear()
        assert len(tr) == 0
        assert tr.dropped == 0
        # the cap applies afresh after clear
        tr.record(0.2, "io", "c")
        assert [p for (_, _, p) in tr.records] == ["c"]
