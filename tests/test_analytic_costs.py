"""Analytic collective cost model: sanity and monotonicity properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import NetworkParams
from repro.simmpi import analytic

P = NetworkParams(latency=5e-6, bandwidth=2e9, send_overhead=1e-6,
                  recv_overhead=1e-6)

ALL_COSTS = [
    ("barrier", lambda p, n: analytic.barrier_cost(P, p)),
    ("bcast", lambda p, n: analytic.bcast_cost(P, p, n)),
    ("reduce", lambda p, n: analytic.reduce_cost(P, p, n)),
    ("allreduce", lambda p, n: analytic.allreduce_cost(P, p, n)),
    ("gather", lambda p, n: analytic.gather_cost(P, p, n)),
    ("scatter", lambda p, n: analytic.scatter_cost(P, p, n)),
    ("allgather", lambda p, n: analytic.allgather_cost(P, p, n)),
    ("alltoall", lambda p, n: analytic.alltoall_cost(P, p, n)),
    ("scan", lambda p, n: analytic.scan_cost(P, p, n)),
]


def test_log2ceil():
    assert analytic.log2ceil(1) == 0
    assert analytic.log2ceil(2) == 1
    assert analytic.log2ceil(3) == 2
    assert analytic.log2ceil(8) == 3
    assert analytic.log2ceil(1024) == 10


@pytest.mark.parametrize("name,fn", ALL_COSTS)
def test_single_rank_is_free(name, fn):
    assert fn(1, 1024) == 0.0


@pytest.mark.parametrize("name,fn", ALL_COSTS)
@given(st.integers(2, 2048), st.integers(0, 1 << 20))
def test_costs_nonnegative(name, fn, p, n):
    assert fn(p, n) >= 0.0


@pytest.mark.parametrize("name,fn", ALL_COSTS)
def test_costs_grow_with_procs(name, fn):
    n = 4096
    assert fn(1024, n) >= fn(8, n)


@pytest.mark.parametrize("name,fn",
                         [c for c in ALL_COSTS if c[0] != "barrier"])
def test_costs_grow_with_size(name, fn):
    assert fn(64, 1 << 20) > fn(64, 8)


def test_alltoall_uses_bruck_for_small_payloads():
    """For tiny per-peer payloads the log-round algorithm must win."""
    p = 1024
    o, lat = P.send_overhead + P.recv_overhead, P.latency
    pairwise = (p - 1) * (o + lat)
    assert analytic.alltoall_cost(P, p, 8) < pairwise


def test_alltoall_pairwise_for_large_payloads():
    """For huge payloads Bruck's log-factor data blowup must not be used."""
    p = 64
    cost = analytic.alltoall_cost(P, p, 1 << 20)
    g = 1.0 / P.bandwidth
    # pairwise moves (p-1) blocks; Bruck would move ~log2(p)*p/2 blocks
    assert cost <= (p - 1) * (P.send_overhead + P.recv_overhead + P.latency) \
        + (p - 1) * (1 << 20) * g + 1e-9


def test_allgatherv_scales_with_total_bytes():
    small = analytic.allgatherv_cost(P, 16, total_bytes=1 << 10, own_bytes=64)
    big = analytic.allgatherv_cost(P, 16, total_bytes=1 << 24, own_bytes=64)
    assert big > small


def test_alltoallv_bounded_by_busiest_endpoint():
    lo = analytic.alltoallv_cost(P, 16, max_send_bytes=1 << 10,
                                 max_recv_bytes=1 << 10)
    hi = analytic.alltoallv_cost(P, 16, max_send_bytes=1 << 10,
                                 max_recv_bytes=1 << 24)
    assert hi > lo
