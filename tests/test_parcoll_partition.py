"""File Area partitioning and pattern classification."""

import pytest

from repro.errors import ParCollError
from repro.parcoll import plan_partition


def serial_extents(n, block):
    """Pattern (a): rank r owns [r*block, (r+1)*block)."""
    return [(r * block, (r + 1) * block, block) for r in range(n)]


def tiled_extents(rows, cols, tile_rows, tile_cols, row_bytes):
    """Pattern (b): 2-D tile extents that intersect within a tile-row."""
    out = []
    for pr in range(rows):
        for pc in range(cols):
            lo = pr * tile_rows * row_bytes + pc * tile_cols
            hi = (pr * tile_rows + tile_rows - 1) * row_bytes \
                + pc * tile_cols + tile_cols
            out.append((lo, hi, tile_rows * tile_cols))
    return out


class TestDirectPartition:
    def test_serial_pattern_splits_evenly(self):
        plan = plan_partition(serial_extents(8, 100), 4)
        assert plan.mode == "direct"
        assert plan.ngroups == 4
        assert plan.group_of == (0, 0, 1, 1, 2, 2, 3, 3)
        assert plan.fa_bounds == ((0, 200), (200, 400), (400, 600), (600, 800))

    def test_single_group_is_identity(self):
        plan = plan_partition(serial_extents(4, 10), 1)
        assert plan.ngroups == 1
        assert plan.group_of == (0, 0, 0, 0)
        assert plan.fa_bounds == ((0, 40),)

    def test_groups_clamped_to_active_ranks(self):
        plan = plan_partition(serial_extents(3, 10), 8)
        assert plan.ngroups == 3

    def test_unsorted_ranks_grouped_by_offset(self):
        # rank order reversed relative to file order
        extents = [(200, 300, 100), (100, 200, 100), (0, 100, 100)]
        plan = plan_partition(extents, 3)
        assert plan.mode == "direct"
        # rank 2 owns the first FA
        assert plan.group_of[2] == 0
        assert plan.group_of[0] == 2

    def test_tile_rows_form_disjoint_fas(self):
        # 4x4 grid of tiles; grouping by tile-rows gives 4 disjoint FAs
        extents = tiled_extents(4, 4, 2, 8, 64)
        plan = plan_partition(extents, 4)
        assert plan.mode == "direct"
        assert plan.ngroups == 4
        for g in range(3):
            assert plan.fa_bounds[g][1] <= plan.fa_bounds[g + 1][0]
        # each group is one row of 4 tiles
        assert plan.group_of == (0,) * 4 + (1,) * 4 + (2,) * 4 + (3,) * 4

    def test_idle_ranks_distributed(self):
        extents = serial_extents(4, 100) + [(-1, -1, 0), (-1, -1, 0)]
        plan = plan_partition(extents, 2)
        assert plan.ngroups == 2
        assert all(0 <= g < 2 for g in plan.group_of)

    def test_all_idle_single_group(self):
        plan = plan_partition([(-1, -1, 0)] * 4, 4)
        assert plan.ngroups == 1
        assert plan.mode == "direct"

    def test_uneven_bytes_balanced(self):
        # one big rank, several small: big one alone in a group
        extents = [(0, 1000, 1000)] + [(1000 + i * 10, 1010 + i * 10, 10)
                                       for i in range(6)]
        plan = plan_partition(extents, 2)
        assert plan.ngroups == 2
        assert plan.group_of[0] == 0
        assert all(g == 1 for g in plan.group_of[1:])


class TestIntermediateSwitch:
    def interleaved_extents(self, n, nseg, seg):
        """Pattern (c): every rank's segments spread across the file."""
        out = []
        for r in range(n):
            lo = r * seg
            hi = (nseg - 1) * n * seg + r * seg + seg
            out.append((lo, hi, nseg * seg))
        return out

    def test_interleaved_switches_to_intermediate(self):
        plan = plan_partition(self.interleaved_extents(8, 4, 10), 4)
        assert plan.mode == "intermediate"
        assert plan.ngroups == 4
        assert plan.logical_prefix is not None

    def test_logical_prefix_is_rank_order_concatenation(self):
        plan = plan_partition(self.interleaved_extents(4, 4, 10), 2)
        assert plan.logical_prefix == (0, 40, 80, 120)
        assert plan.fa_bounds == ((0, 80), (80, 160))

    def test_logical_fas_disjoint_always(self):
        plan = plan_partition(self.interleaved_extents(16, 8, 7), 5)
        for g in range(plan.ngroups - 1):
            assert plan.fa_bounds[g][1] <= plan.fa_bounds[g + 1][0]

    def test_disabled_intermediate_merges_groups(self):
        plan = plan_partition(self.interleaved_extents(8, 4, 10), 4,
                              allow_intermediate=False)
        assert plan.mode == "direct"
        # fully interleaved pattern collapses to one group
        assert plan.ngroups == 1

    def test_partial_overlap_merges_only_neighbours(self):
        # two disjoint clusters, each internally interleaved
        cluster1 = [(0, 100, 30), (10, 110, 30)]
        cluster2 = [(500, 600, 30), (510, 610, 30)]
        plan = plan_partition(cluster1 + cluster2, 4,
                              allow_intermediate=False)
        assert plan.mode == "direct"
        assert plan.ngroups == 2


class TestValidation:
    def test_bad_ngroups(self):
        with pytest.raises(ParCollError):
            plan_partition(serial_extents(4, 10), 0)

    def test_plan_is_deterministic(self):
        e = serial_extents(16, 33)
        assert plan_partition(e, 5) == plan_partition(e, 5)

    def test_cache_key_distinguishes_modes(self):
        direct = plan_partition(serial_extents(8, 10), 2)
        inter = plan_partition(
            TestIntermediateSwitch().interleaved_extents(8, 2, 10), 2)
        assert direct.cache_key() != inter.cache_key()
