"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Engine, Event, Join, Sleep, Spawn, WaitEvent


def test_sleep_advances_virtual_clock():
    eng = Engine()
    seen = []

    def prog():
        yield Sleep(1.5)
        seen.append(eng.now)
        yield Sleep(2.5)
        seen.append(eng.now)
        return "done"

    (result,) = eng.run_tasks([prog()])
    assert result == "done"
    assert seen == [1.5, 4.0]
    assert eng.now == 4.0


def test_zero_sleep_is_allowed():
    eng = Engine()

    def prog():
        yield Sleep(0.0)
        return eng.now

    (result,) = eng.run_tasks([prog()])
    assert result == 0.0


def test_negative_sleep_raises():
    eng = Engine()

    def prog():
        yield Sleep(-1.0)

    with pytest.raises(SimulationError):
        eng.run_tasks([prog()])


def test_two_tasks_interleave_deterministically():
    eng = Engine()
    order = []

    def prog(name, dt):
        for i in range(3):
            yield Sleep(dt)
            order.append((name, eng.now))

    eng.run_tasks([prog("a", 1.0), prog("b", 0.5)])
    assert order == [
        ("b", 0.5), ("a", 1.0), ("b", 1.0), ("b", 1.5), ("a", 2.0), ("a", 3.0),
    ]


def test_event_wait_and_fire():
    eng = Engine()
    ev = Event(eng, "ping")
    got = []

    def waiter():
        val = yield WaitEvent(ev)
        got.append((eng.now, val))

    def firer():
        yield Sleep(3.0)
        ev.fire(42)

    eng.run_tasks([waiter(), firer()])
    assert got == [(3.0, 42)]


def test_event_fired_before_wait_returns_immediately():
    eng = Engine()
    ev = Event(eng, "pre")
    ev.fire("early")

    def waiter():
        val = yield WaitEvent(ev)
        return (eng.now, val)

    (result,) = eng.run_tasks([waiter()])
    assert result == (0.0, "early")


def test_event_multiple_waiters_all_resume():
    eng = Engine()
    ev = Event(eng, "broadcast")
    got = []

    def waiter(i):
        val = yield WaitEvent(ev)
        got.append((i, val))

    def firer():
        yield Sleep(1.0)
        ev.fire("x")

    eng.run_tasks([waiter(0), waiter(1), waiter(2), firer()])
    assert sorted(got) == [(0, "x"), (1, "x"), (2, "x")]


def test_event_double_fire_raises():
    eng = Engine()
    ev = Event(eng, "once")
    ev.fire(1)
    with pytest.raises(SimulationError):
        ev.fire(2)


def test_event_fire_later():
    eng = Engine()
    ev = Event(eng, "delayed")

    def waiter():
        val = yield WaitEvent(ev)
        return (eng.now, val)

    def firer():
        ev.fire_later(5.0, "v")
        return None
        yield  # pragma: no cover

    results = eng.run_tasks([waiter(), firer()])
    assert results[0] == (5.0, "v")


def test_spawn_and_join_returns_child_result():
    eng = Engine()

    def child(x):
        yield Sleep(2.0)
        return x * 2

    def parent():
        t = yield Spawn(child(21), "child")
        val = yield Join(t)
        return (eng.now, val)

    (result,) = eng.run_tasks([parent()])
    assert result == (2.0, 42)


def test_join_already_finished_task():
    eng = Engine()

    def child():
        return 7
        yield  # pragma: no cover

    def parent():
        t = yield Spawn(child(), "c")
        yield Sleep(1.0)
        val = yield Join(t)
        return val

    (result,) = eng.run_tasks([parent()])
    assert result == 7


def test_child_exception_propagates_to_joiner():
    eng = Engine()

    def child():
        yield Sleep(1.0)
        raise ValueError("boom")

    def parent():
        t = yield Spawn(child(), "c")
        try:
            yield Join(t)
        except ValueError as e:
            return f"caught {e}"

    (result,) = eng.run_tasks([parent()])
    assert result == "caught boom"


def test_unjoined_child_exception_fails_run():
    eng = Engine()

    def child():
        yield Sleep(1.0)
        raise ValueError("unseen")

    def parent():
        yield Spawn(child(), "c")
        yield Sleep(5.0)

    # run_tasks unwraps the TaskFailedError to the original exception
    with pytest.raises(ValueError, match="unseen"):
        eng.run_tasks([parent()])


def test_deadlock_detection_names_blocked_tasks():
    eng = Engine()
    ev = Event(eng, "never")

    def prog():
        yield WaitEvent(ev)

    eng.spawn(prog(), name="stuck-task")
    with pytest.raises(DeadlockError) as exc:
        eng.run()
    assert "stuck-task" in str(exc.value)
    assert "never" in str(exc.value)


def test_yielding_non_effect_raises():
    eng = Engine()

    def prog():
        yield "not an effect"

    with pytest.raises(SimulationError):
        eng.run_tasks([prog()])


def test_run_until_pauses_and_resumes():
    eng = Engine()
    seen = []

    def prog():
        for _ in range(4):
            yield Sleep(1.0)
            seen.append(eng.now)

    eng.spawn(prog())
    eng.run(until=2.5)
    assert seen == [1.0, 2.0]
    assert eng.now == 2.5
    eng.run()
    assert seen == [1.0, 2.0, 3.0, 4.0]


def test_cannot_schedule_in_the_past():
    eng = Engine()
    eng.now = 10.0
    with pytest.raises(SimulationError):
        eng.call_at(5.0, lambda: None)


def test_many_tasks_scale():
    eng = Engine()
    counter = []

    def prog(i):
        yield Sleep(i * 0.001)
        counter.append(i)

    eng.run_tasks([prog(i) for i in range(1000)])
    assert counter == list(range(1000))
