"""Property tests for the vectorized batch scheduling kernels.

The macro engine's whole correctness story rests on three kernels being
*bit-identical* to the scalar paths they replace:

* :meth:`FIFOResource.reserve_batch` vs a loop of
  :meth:`FIFOResource.reserve_span` calls — with and without piecewise
  :class:`ServiceProfile` fault windows;
* :meth:`NetworkModel.transfer_batch` vs a loop of
  :meth:`NetworkModel.transfer` calls — mixed intra-/cross-node
  destinations, with and without NIC profiles;
* :meth:`Engine.schedule_batch` and :meth:`World.send_batch` /
  :meth:`Communicator.isend_batch` vs their per-entry equivalents.

Hypothesis drives the first two (seeded, shrinkable); the engine- and
world-level checks are deterministic unit tests.  Equality assertions
are ``==`` on floats on purpose: the determinism gate requires the
batched paths to reproduce the exact IEEE left-folds of the scalar
loops, not approximations of them.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import MachineConfig, NetworkParams
from repro.errors import SimulationError
from repro.sim import Engine, FIFOResource
from repro.sim.resources import ServiceProfile
from repro.simmpi import World
from repro.simmpi.payload import Payload

# -- strategies -------------------------------------------------------

sizes_st = st.lists(st.integers(min_value=0, max_value=1 << 20),
                    min_size=1, max_size=40)

# arrival gaps relative to the previous request, occasionally negative
# is impossible (arrivals are issue-ordered reservation times) but
# clustering at 0 is the common regime the macro engine produces
gaps_st = st.lists(st.floats(min_value=0.0, max_value=2.0,
                             allow_nan=False, allow_infinity=False),
                   min_size=1, max_size=40)


def profile_st():
    """Fault windows: (start, duration, factor) incl. full stalls."""
    window = st.tuples(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        st.floats(min_value=1e-3, max_value=5.0, allow_nan=False),
        st.sampled_from([0.0, 0.1, 0.5, 2.0]))
    return st.lists(window, min_size=1, max_size=4)


def make_profile(windows) -> ServiceProfile:
    # a 0-speed window must close, or work inside it never finishes
    return ServiceProfile([(s, s + d, f) for s, d, f in windows])


def resource_state(r: FIFOResource) -> tuple:
    return (r.busy_until, r.busy_time, r.total_bytes, r.total_requests)


# -- reserve_batch vs reserve_span ------------------------------------

@settings(deadline=None)
@given(sizes=sizes_st, gaps=gaps_st,
       overhead=st.sampled_from([0.0, 1e-6, 0.01]),
       rate=st.sampled_from([1.0, 1e6, 3.7e9]))
def test_reserve_batch_matches_scalar_loop(sizes, gaps, overhead, rate):
    n = min(len(sizes), len(gaps))
    sizes, gaps = sizes[:n], gaps[:n]
    ts = np.cumsum(gaps)
    a = FIFOResource(Engine(), "a", rate=rate, overhead=overhead)
    b = FIFOResource(Engine(), "b", rate=rate, overhead=overhead)
    starts, dones = a.reserve_batch(ts, sizes)
    ref = [b.reserve_span(float(t), s) for t, s in zip(ts, sizes)]
    assert starts.tolist() == [r[0] for r in ref]
    assert dones.tolist() == [r[1] for r in ref]
    assert resource_state(a) == resource_state(b)


@settings(deadline=None)
@given(sizes=sizes_st, gaps=gaps_st, windows=profile_st())
def test_reserve_batch_matches_scalar_loop_with_profile(sizes, gaps,
                                                        windows):
    n = min(len(sizes), len(gaps))
    sizes, gaps = sizes[:n], gaps[:n]
    ts = np.cumsum(gaps)
    a = FIFOResource(Engine(), "a", rate=1e6, overhead=1e-5)
    b = FIFOResource(Engine(), "b", rate=1e6, overhead=1e-5)
    a.profile = make_profile(windows)
    b.profile = make_profile(windows)
    starts, dones = a.reserve_batch(ts, sizes)
    ref = [b.reserve_span(float(t), s) for t, s in zip(ts, sizes)]
    assert starts.tolist() == [r[0] for r in ref]
    assert dones.tolist() == [r[1] for r in ref]
    assert resource_state(a) == resource_state(b)


def test_reserve_batch_empty_and_negative():
    r = FIFOResource(Engine(), "r", rate=10.0)
    starts, dones = r.reserve_batch([], [])
    assert starts.size == 0 and dones.size == 0
    assert resource_state(r) == (0.0, 0.0, 0, 0)
    with pytest.raises(SimulationError):
        r.reserve_batch([0.0, 0.0], [4, -1])


# -- transfer_batch vs transfer ---------------------------------------

def _two_networks(nprocs=12, cores_per_node=3, profiled=()):
    nets = []
    for _ in range(2):
        w = World(MachineConfig(nprocs=nprocs,
                                cores_per_node=cores_per_node),
                  net_params=NetworkParams())
        net = w.network
        for node in profiled:
            prof = ServiceProfile([(0.0, 1e-4, 0.25), (2e-4, 3e-4, 0.0)])
            net.tx[node].profile = prof
            net.rx[node].profile = ServiceProfile([(0.0, 2e-4, 0.5)])
        nets.append(net)
    return nets


@settings(deadline=None)
@given(dsts=st.lists(st.integers(min_value=0, max_value=11),
                     min_size=1, max_size=30),
       sizes=st.lists(st.integers(min_value=0, max_value=1 << 18),
                      min_size=1, max_size=30),
       profiled=st.sampled_from([(), (0,), (0, 2)]))
def test_transfer_batch_matches_scalar_loop(dsts, sizes, profiled):
    n = min(len(dsts), len(sizes))
    dsts, sizes = dsts[:n], sizes[:n]
    net_a, net_b = _two_networks(profiled=profiled)
    frees, arrivals = net_a.transfer_batch(0, dsts, sizes)
    ref = [net_b.transfer(0, d, s) for d, s in zip(dsts, sizes)]
    assert frees.tolist() == [r[0] for r in ref]
    assert arrivals.tolist() == [r[1] for r in ref]
    assert net_a.messages_sent == net_b.messages_sent
    assert net_a.bytes_sent == net_b.bytes_sent
    assert net_a.cross_node_messages == net_b.cross_node_messages
    assert net_a.cross_node_bytes == net_b.cross_node_bytes
    for ra, rb in zip(net_a.tx + net_a.rx, net_b.tx + net_b.rx):
        assert resource_state(ra) == resource_state(rb)


# -- Engine.schedule_batch and lazy names -----------------------------

def test_schedule_batch_preserves_relative_order():
    eng = Engine()
    fired = []

    def cb(tag):
        fired.append((eng.now, tag))

    def prog():
        eng.schedule_batch([(0.5, cb, "a"), (0.5, cb, "b"),
                            (1.0, cb, "c")])
        eng.schedule_batch([(0.5, cb, "d")])
        yield from ()

    eng.run_tasks([prog()])
    eng.run()
    assert fired == [(0.5, "a"), (0.5, "b"), (0.5, "d"), (1.0, "c")]


def test_lazy_tuple_task_and_event_names():
    from repro.sim import Event, Spawn
    from repro.sim.engine import _label

    eng = Engine()
    seen = {}

    def child():
        yield from ()
        return "ok"

    def prog():
        task = yield Spawn(child(), ("pipelined-write", 3))
        seen["name"] = task.name
        ev = Event(eng, ("send-free", 1, 0))
        ev.fire("v")
        seen["event"] = _label(ev.name)
        return None

    eng.run_tasks([prog()])
    assert seen["name"] == "pipelined-write:3"
    assert seen["event"] == "send-free:1:0"


# -- send_batch / isend_batch vs per-message isend --------------------

def _exchange(world: World, use_batch: bool, items, nbytes_fn):
    """Rank 0 sends ``items`` to each dst; receivers recv and record."""
    recv_times = {}

    def prog(comm):
        if comm.rank == 0:
            payloads = [(dst, Payload(nbytes_fn(i), ("m", i)))
                        for i, dst in enumerate(items)]
            if use_batch:
                reqs = comm.isend_batch(payloads, tag=7)
            else:
                reqs = [comm.isend(p, dest=dst, tag=7)
                        for dst, p in payloads]
            yield from comm.waitall(reqs, category="exchange")
        if comm.rank in items:
            for i, dst in enumerate(items):
                if dst != comm.rank:
                    continue
                payload = yield from comm.recv(source=0, tag=7,
                                               category="exchange")
                recv_times[(comm.rank, i)] = (comm.now, payload.data)
        return comm.now

    exits = world.launch(prog)
    net = world.network
    return (exits, recv_times,
            [resource_state(r) for r in net.tx + net.rx])


@pytest.mark.parametrize("sizes", [
    [64, 64, 64],                 # all eager
    [64, 1 << 20, 64],            # rendezvous splits the run
    [1 << 20, 1 << 20],           # all rendezvous
    [0, 64, 0, 64],               # zero-byte eager messages
])
def test_send_batch_virtual_times_match_per_message(sizes):
    items = [1 + (i % 3) for i in range(len(sizes))]
    out = []
    for use_batch in (False, True):
        w = World(MachineConfig(nprocs=4, cores_per_node=2),
                  net_params=NetworkParams())
        out.append(_exchange(w, use_batch, items,
                             lambda i: sizes[i]))
    assert out[0] == out[1]


def test_isend_batch_rejects_out_of_range_rank():
    w = World(MachineConfig(nprocs=2, cores_per_node=2),
              net_params=NetworkParams())
    from repro.errors import MPIError

    def prog(comm):
        if comm.rank == 0:
            with pytest.raises(MPIError):
                comm.world.send_batch(0, [(5, 0, 0, Payload(8, None))])
        yield from comm.barrier()

    w.launch(prog)
