"""Smoke tests: every figure function runs at a tiny scale and returns a
well-formed FigureResult with the claimed structure (full-scale shape
assertions live in benchmarks/)."""

import pytest

from repro.harness import figures


def check_result(result, min_rows=1):
    assert result.figure.startswith("Figure")
    assert result.headers
    assert len(result.rows) >= min_rows
    text = result.to_table()
    assert result.title in text
    for h in result.headers:
        assert h in text


def test_fig01_smoke():
    r = figures.fig01_collective_wall(procs=(4, 8))
    check_result(r, min_rows=2)
    assert set(r.series["sync_share"]) == {4, 8}


def test_fig02_smoke():
    r = figures.fig02_breakdown(procs=(4, 8))
    check_result(r, min_rows=2)
    for cat in ("sync", "exchange", "io"):
        assert set(r.series[cat]) == {4, 8}


def test_fig05_smoke():
    r = figures.fig05_aggregator_distribution()
    check_result(r, min_rows=4)


def test_fig06_smoke():
    r = figures.fig06_ior(procs=(4,), group_counts=(2,))
    check_result(r, min_rows=2)
    assert "Cray (ext2ph)" in r.series
    assert "ParColl-2" in r.series


def test_fig07_smoke():
    r = figures.fig07_tileio_groups(nprocs=4, group_counts=(1, 2),
                                    include_read=False)
    check_result(r, min_rows=2)
    assert set(r.series["write"]) == {1, 2}


def test_fig08_smoke():
    r = figures.fig08_sync_reduction(nprocs=4, group_counts=(1, 2))
    check_result(r, min_rows=2)


def test_fig09_smoke():
    r = figures.fig09_scalability(procs=(4, 8))
    check_result(r, min_rows=2)
    assert set(r.series["baseline"]) == {4, 8}


def test_fig10_smoke():
    r = figures.fig10_btio(procs=(4,))
    check_result(r, min_rows=1)


def test_fig11_smoke():
    r = figures.fig11_flashio(nprocs=8, ngroups=2)
    check_result(r, min_rows=5)
    assert "Cray w/o Coll" in r.series


def test_cli_figures_all_registered():
    from repro.cli import FIGURES

    assert set(FIGURES) == {"1", "2", "5", "6", "7", "8", "9", "10", "11"}
