"""Unit tests for the machine model, mappings, topology and network."""

import numpy as np
import pytest

from repro.cluster import Machine, MachineConfig, NetworkModel, NetworkParams, Torus3D
from repro.cluster.machine import compute_mapping
from repro.errors import ConfigError
from repro.sim import Engine


class TestMapping:
    def test_block_mapping_matches_figure5(self):
        # Figure 5: 8 processes, 2 cores/node, block: N0(P0,P1) N1(P2,P3)...
        node_of = compute_mapping(8, 2, "block")
        np.testing.assert_array_equal(node_of, [0, 0, 1, 1, 2, 2, 3, 3])

    def test_cyclic_mapping_matches_figure5(self):
        # Figure 5: cyclic: N0(P0,P4) N1(P1,P5) N2(P2,P6) N3(P3,P7)
        node_of = compute_mapping(8, 2, "cyclic")
        np.testing.assert_array_equal(node_of, [0, 1, 2, 3, 0, 1, 2, 3])

    def test_uneven_last_node(self):
        node_of = compute_mapping(5, 2, "block")
        np.testing.assert_array_equal(node_of, [0, 0, 1, 1, 2])

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ConfigError):
            compute_mapping(4, 2, "scatter")


class TestMachine:
    def test_nnodes_rounds_up(self):
        assert MachineConfig(nprocs=5, cores_per_node=2).nnodes == 3
        assert MachineConfig(nprocs=4, cores_per_node=2).nnodes == 2

    def test_ranks_on_node_inverse_of_node_of(self):
        m = Machine(MachineConfig(nprocs=8, cores_per_node=2, mapping="cyclic"))
        assert m.ranks_on_node(0) == [0, 4]
        assert m.ranks_on_node(3) == [3, 7]
        for node in range(m.nnodes):
            for r in m.ranks_on_node(node):
                assert m.node_of_rank(r) == node

    def test_colocated(self):
        m = Machine(MachineConfig(nprocs=8, cores_per_node=2, mapping="block"))
        assert m.colocated(0, 1)
        assert not m.colocated(1, 2)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            MachineConfig(nprocs=0)
        with pytest.raises(ConfigError):
            MachineConfig(nprocs=4, cores_per_node=0)

    def test_rank_bounds_checked(self):
        m = Machine(MachineConfig(nprocs=4, cores_per_node=2))
        with pytest.raises(ConfigError):
            m.node_of_rank(4)
        with pytest.raises(ConfigError):
            m.ranks_on_node(9)


class TestTorus:
    def test_fit_covers_requested_nodes(self):
        for n in (1, 2, 7, 8, 27, 100, 1000):
            t = Torus3D.fit(n)
            assert t.nnodes >= n

    def test_hops_symmetric_and_zero_on_diagonal(self):
        t = Torus3D((4, 4, 4))
        for a in range(0, 64, 7):
            assert t.hops(a, a) == 0
            for b in range(0, 64, 11):
                assert t.hops(a, b) == t.hops(b, a)

    def test_wraparound_distance(self):
        t = Torus3D((4, 1, 1))
        # nodes 0 and 3 are adjacent through the wrap link
        assert t.hops(0, 3) == 1
        assert t.hops(0, 2) == 2

    def test_diameter(self):
        assert Torus3D((4, 4, 4)).diameter() == 6

    def test_hops_match_networkx_shortest_paths(self):
        t = Torus3D((3, 3, 2))
        import networkx as nx

        g = t.to_networkx()
        spl = dict(nx.all_pairs_shortest_path_length(g))
        for a in range(t.nnodes):
            for b in range(t.nnodes):
                expected = 0 if a == b else spl[a][b]
                assert t.hops(a, b) == expected, (a, b)

    def test_invalid_dims(self):
        with pytest.raises(ConfigError):
            Torus3D((0, 1, 1))


class TestNetworkModel:
    def make(self, nprocs=4, cores=2, **kw):
        eng = Engine()
        machine = Machine(MachineConfig(nprocs=nprocs, cores_per_node=cores))
        params = NetworkParams(**kw)
        return eng, NetworkModel(eng, machine, params)

    def test_isolated_message_cost(self):
        eng, net = self.make(latency=1e-6, bandwidth=1e9, send_overhead=1e-7,
                             recv_overhead=1e-7)
        free, arrival = net.transfer(0, 2, 1000)  # cross node
        assert free == pytest.approx(1e-7 + 1000 / 1e9)
        # arrival = tx_start + latency + rx service
        assert arrival == pytest.approx(1e-6 + 1e-7 + 1000 / 1e9, rel=1e-9)

    def test_intra_node_uses_memcpy(self):
        eng, net = self.make(memcpy_bandwidth=2e9, send_overhead=1e-7)
        free, arrival = net.transfer(0, 1, 2000)  # same node (block mapping)
        assert free == arrival == pytest.approx(1e-7 + 2000 / 2e9)
        assert net.tx[0].total_requests == 0

    def test_outcast_serializes_on_sender_tx(self):
        eng, net = self.make(latency=0.0, bandwidth=1e6, send_overhead=0.0,
                             recv_overhead=0.0)
        _, a1 = net.transfer(0, 2, 1_000_000)  # 1 s on the wire
        _, a2 = net.transfer(0, 3, 1_000_000)
        assert a1 == pytest.approx(1.0)
        assert a2 == pytest.approx(2.0)

    def test_incast_serializes_on_receiver_rx(self):
        eng, net = self.make(nprocs=6, latency=0.0, bandwidth=1e6,
                             send_overhead=0.0, recv_overhead=0.0)
        _, a1 = net.transfer(0, 4, 1_000_000)  # nodes 0 -> 2
        _, a2 = net.transfer(2, 4, 1_000_000)  # nodes 1 -> 2
        assert a1 == pytest.approx(1.0)
        assert a2 == pytest.approx(2.0)

    def test_hop_latency_with_topology(self):
        eng = Engine()
        machine = Machine(MachineConfig(nprocs=8, cores_per_node=1))
        topo = Torus3D((8, 1, 1))
        params = NetworkParams(latency=1e-6, hop_latency=1e-6, bandwidth=1e12,
                               send_overhead=0.0, recv_overhead=0.0)
        net = NetworkModel(eng, machine, params, topology=topo)
        assert net.wire_latency(0, 1) == pytest.approx(2e-6)
        assert net.wire_latency(0, 4) == pytest.approx(5e-6)  # 4 hops max on ring of 8

    def test_topology_too_small_rejected(self):
        eng = Engine()
        machine = Machine(MachineConfig(nprocs=64, cores_per_node=1))
        with pytest.raises(ConfigError):
            NetworkModel(eng, machine, topology=Torus3D((2, 2, 2)))

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            NetworkParams(latency=-1.0)
        with pytest.raises(ConfigError):
            NetworkParams(bandwidth=0.0)
        with pytest.raises(ConfigError):
            NetworkParams(eager_threshold=-1)

    def test_traffic_counters(self):
        eng, net = self.make()
        net.transfer(0, 2, 100)
        net.transfer(0, 2, 200)
        assert net.messages_sent == 2
        assert net.bytes_sent == 300
