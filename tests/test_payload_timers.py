"""Payloads, size estimation, time-breakdown accounting, errors module."""

import numpy as np
import pytest

from repro.errors import MPIError, ReproError, TaskFailedError
from repro.simmpi import Payload, TimeBreakdown, sizeof
from repro.simmpi.timers import summarize


class TestSizeof:
    def test_numpy_exact(self):
        assert sizeof(np.zeros(10, dtype=np.float64)) == 80
        assert sizeof(np.zeros((3, 4), dtype=np.int32)) == 48

    def test_bytes(self):
        assert sizeof(b"hello") == 5
        assert sizeof(bytearray(12)) == 12

    def test_scalars(self):
        assert sizeof(7) == 8
        assert sizeof(3.14) == 8
        assert sizeof(True) == 8
        assert sizeof(np.int64(3)) == 8

    def test_none(self):
        assert sizeof(None) == 0

    def test_string(self):
        assert sizeof("abc") == 3

    def test_containers_recursive(self):
        assert sizeof([1, 2, 3]) == 8 + 24
        assert sizeof((1, "ab")) == 8 + 8 + 2
        assert sizeof({1: 2}) == 8 + 16

    def test_object_with_dict(self):
        class Thing:
            def __init__(self):
                self.a = 1
                self.b = np.zeros(4, dtype=np.uint8)

        assert sizeof(Thing()) == 8 + 8 + 4


class TestPayload:
    def test_of_wraps_and_sizes(self):
        arr = np.zeros(100, dtype=np.uint8)
        p = Payload.of(arr)
        assert p.nbytes == 100
        assert p.data is arr
        assert not p.is_model

    def test_explicit_nbytes_override(self):
        p = Payload.of([1, 2], nbytes=1000)
        assert p.nbytes == 1000

    def test_model_payload(self):
        p = Payload.model(1 << 30)
        assert p.is_model
        assert p.data is None

    def test_negative_size_rejected(self):
        with pytest.raises(MPIError):
            Payload(-1)

    def test_zero_byte_real_payload_not_model(self):
        assert not Payload(0, None).is_model


class TestTimeBreakdown:
    def test_accumulates(self):
        bd = TimeBreakdown()
        bd.add("sync", 1.0)
        bd.add("sync", 2.0)
        bd.add("io", 0.5)
        assert bd.get("sync") == 3.0
        assert bd.counts["sync"] == 2
        assert bd.total() == 3.5
        assert bd.total(["io"]) == 0.5

    def test_negative_rejected(self):
        bd = TimeBreakdown()
        with pytest.raises(ValueError):
            bd.add("sync", -0.1)

    def test_snapshot_is_copy(self):
        bd = TimeBreakdown()
        bd.add("io", 1.0)
        snap = bd.snapshot()
        bd.add("io", 1.0)
        assert snap["io"] == 1.0

    def test_clear(self):
        bd = TimeBreakdown()
        bd.add("io", 1.0)
        bd.clear()
        assert bd.total() == 0.0

    def test_merged_with(self):
        a, b = TimeBreakdown(), TimeBreakdown()
        a.add("sync", 1.0)
        b.add("sync", 2.0)
        b.add("io", 3.0)
        m = a.merged_with(b)
        assert m.get("sync") == 3.0
        assert m.get("io") == 3.0
        assert a.get("sync") == 1.0  # originals untouched

    def test_summarize(self):
        bds = []
        for t in (1.0, 3.0):
            bd = TimeBreakdown()
            bd.add("sync", t)
            bds.append(bd)
        s = summarize(bds)
        assert s["sync"]["max"] == 3.0
        assert s["sync"]["mean"] == 2.0
        assert s["sync"]["sum"] == 4.0

    def test_summarize_empty(self):
        assert summarize([]) == {}


class TestErrors:
    def test_hierarchy(self):
        from repro.errors import (ConfigError, DatatypeError, FileSystemError,
                                  MPIIOError, ParCollError, SimulationError)

        for exc in (ConfigError, DatatypeError, FileSystemError, MPIIOError,
                    ParCollError, SimulationError, MPIError):
            assert issubclass(exc, ReproError)

    def test_task_failed_preserves_original(self):
        original = ValueError("inner")
        exc = TaskFailedError("rank-3", original)
        assert exc.original is original
        assert "rank-3" in str(exc)

    def test_deadlock_error_lists_tasks(self):
        from repro.errors import DeadlockError

        exc = DeadlockError(["a: waiting", "b: joining"])
        assert "2 task(s)" in str(exc)
        assert "a: waiting" in str(exc)
