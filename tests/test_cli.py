"""The CLI surface, run in-process: every subcommand's happy path plus
the error exits.  A shared fixture pins the cache to a temp directory
and the pool width to 1 so tests never touch the repo's real run cache."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def cli(tmp_path, monkeypatch, capsys):
    """Run ``main(argv)`` hermetically; returns (exit_code, out, err)."""
    monkeypatch.setenv("REPRO_RUNCACHE", str(tmp_path / "runcache"))
    monkeypatch.setenv("REPRO_JOBS", "1")
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)

    def run(*argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    return run


class TestListing:
    def test_list_names_every_figure(self, cli):
        code, out, _ = cli("list")
        assert code == 0
        for number in ("1", "2", "5", "6", "7", "8", "9", "10", "11"):
            assert f"figure {number:>2}:" in out

    def test_backends_lists_fidelities(self, cli):
        code, out, _ = cli("backends")
        assert code == 0
        for name in ("analytic", "detailed", "hybrid"):
            assert name in out

    def test_protocols_lists_registry(self, cli):
        code, out, _ = cli("protocols")
        assert code == 0
        for name in ("independent", "ext2ph", "parcoll", "nodeagg",
                     "listio"):
            assert name in out


class TestZoo:
    def test_zoo_small_race(self, cli):
        code, out, _ = cli("zoo", "--nprocs", "4", "--max-evals", "2")
        assert code == 0
        assert "advisor picks" in out
        for name in ("independent", "ext2ph", "parcoll"):
            assert name in out

    def test_zoo_bad_nprocs_exits_2(self, cli):
        code, _, err = cli("zoo", "--nprocs", "0")
        assert code == 2
        assert "error:" in err


class TestPerf:
    def test_perf_list(self, cli):
        code, out, _ = cli("perf", "list")
        assert code == 0
        for name in ("tileio_detailed", "btio_iview", "flash_verified"):
            assert name in out

    def test_perf_profile_smoke(self, cli):
        code, out, _ = cli("perf", "profile", "tileio_detailed", "--top", "5")
        assert code == 0
        assert "profile of tileio_detailed (smoke scale" in out
        assert "sim perf counters:" in out

    def test_perf_profile_unknown_experiment_exits_2(self, cli):
        code, _, err = cli("perf", "profile", "nope")
        assert code == 2
        assert "unknown experiment" in err


class TestFaults:
    def test_classes_lists_each_with_severities(self, cli):
        code, out, _ = cli("faults", "classes")
        assert code == 0
        assert "straggler" in out
        assert "severities [" in out

    def test_sweep_small(self, cli):
        code, out, _ = cli("faults", "sweep", "straggler",
                           "--scale", "small", "--severities", "0.5")
        assert code == 0
        assert "0.5" in out

    def test_sweep_bad_severities_exits_2(self, cli):
        code, _, err = cli("faults", "sweep", "straggler",
                           "--severities", "high,higher")
        assert code == 2
        assert "bad --severities" in err

    def test_report_small(self, cli):
        code, out, _ = cli("faults", "report", "--scale", "small")
        assert code == 0
        assert "fault impact" in out


class TestCache:
    def test_inspect_then_clear(self, cli):
        # populate the (temp) cache with one real entry
        code, _, _ = cli("faults", "sweep", "straggler",
                         "--scale", "small", "--severities", "0.5")
        assert code == 0
        code, out, _ = cli("cache")
        assert code == 0
        assert "entries:" in out
        entries = int(out.split("entries:")[1].split()[0])
        assert entries >= 1
        code, out, _ = cli("cache", "--clear")
        assert code == 0
        assert f"removed {entries} entries" in out
        code, out, _ = cli("cache")
        assert "entries:   0" in out


class TestFigures:
    def test_unknown_figure_exits_2(self, cli):
        code, _, err = cli("figure", "3")
        assert code == 2
        assert "unknown figure" in err

    def test_bad_collective_mode_exits_2(self, cli):
        code, _, err = cli("figure", "9", "--scale", "small",
                           "--collective-mode", "psychic")
        assert code == 2
        assert "bad --collective-mode" in err

    def test_figure_with_validate_flag(self, cli):
        # the whole sweep runs under the oracle; violations would raise
        code, out, _ = cli("figure", "1", "--scale", "small", "--validate")
        assert code == 0
        assert "Figure 1" in out


class TestValidate:
    def test_differential_small_run(self, cli, tmp_path):
        report = tmp_path / "diff.json"
        code, out, err = cli("validate", "differential",
                             "--cases", "4", "--seed", "1",
                             "--out", str(report))
        assert code == 0
        assert "differential: 4/4 cases passed" in out
        assert "4/4 cases" in err  # progress goes to stderr
        data = json.loads(report.read_text())
        assert data["ok"] is True and data["seed"] == 1
