"""The macro backend's contract: bit-identical to detailed, far cheaper.

Every test here runs the same rank program twice — once under the
``detailed`` fidelity, once under ``macro`` — and compares *exactly*:
per-rank results and exit times, end-of-run clock, network counters, and
the full per-NIC ``(busy_until, busy_time, total_bytes,
total_requests)`` state.  Float comparisons are ``==`` on purpose: the
macro walker must replay the identical IEEE arithmetic through the
identical FIFO reservation order, and the hot-path determinism gate
(``benchmarks/bench_hotpath.py``) depends on that holding at scale.

Coverage mirrors the acceptance grid: every coalescible collective kind
x eager/rendezvous sizes x arrival skew x node shapes, concurrent and
back-to-back rounds, subcommunicators, hybrid composition, per-handle
``with_backend`` overrides, NIC fault profiles, the declared fallbacks
(size-1 comms, zero-latency networks), and the mismatched-collective
ledger error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import MachineConfig, NetworkParams
from repro.errors import MPIError
from repro.perf import perf_counters
from repro.sim.effects import Sleep
from repro.sim.resources import ServiceProfile
from repro.simmpi import World
from repro.simmpi.reduce_ops import SUM


def net_snapshot(world: World) -> dict:
    net = world.network
    return {
        "now": world.engine.now,
        "msgs": net.messages_sent,
        "bytes": net.bytes_sent,
        "xmsgs": net.cross_node_messages,
        "xbytes": net.cross_node_bytes,
        "tx": [(r.busy_until, r.busy_time, r.total_bytes,
                r.total_requests) for r in net.tx],
        "rx": [(r.busy_until, r.busy_time, r.total_bytes,
                r.total_requests) for r in net.rx],
    }


def norm(x):
    if isinstance(x, np.ndarray):
        return ("nd", x.dtype.str, x.tolist())
    if isinstance(x, (list, tuple)):
        return [norm(y) for y in x]
    return x


def run_world(mode: str, p: int, cpn: int, program, profile_nodes=(),
              **net_kw):
    world = World(MachineConfig(nprocs=p, cores_per_node=cpn),
                  collective_mode=mode,
                  net_params=NetworkParams(**net_kw))
    for node in profile_nodes:
        world.network.tx[node].profile = ServiceProfile(
            [(0.0, 1e-4, 0.25), (2e-4, 4e-4, 0.0)])
        world.network.rx[node].profile = ServiceProfile(
            [(1e-5, 3e-4, 0.5)])
    results = world.launch(program)
    return norm(results), net_snapshot(world)


def assert_macro_matches_detailed(p, cpn, program, profile_nodes=(),
                                  **net_kw):
    det = run_world("detailed", p, cpn, program,
                    profile_nodes=profile_nodes, **net_kw)
    mac = run_world("macro", p, cpn, program,
                    profile_nodes=profile_nodes, **net_kw)
    assert det[0] == mac[0], "per-rank results diverge"
    assert det[1] == mac[1], "virtual-time / NIC state diverges"


def grid_program(kind: str, p: int, nb, skew: float):
    def program(comm):
        r = comm.rank
        yield Sleep(skew * ((r * 7) % 5))
        if kind == "barrier":
            res = yield from comm.barrier()
        elif kind == "allgather":
            res = yield from comm.allgather(("v", r), nbytes=nb)
        elif kind == "allgather_none":
            res = yield from comm.allgather([r] * 3)
        elif kind == "alltoall":
            res = yield from comm.alltoall(list(range(p)), nbytes_each=nb)
        elif kind == "alltoall_np":
            res = yield from comm.alltoall(np.arange(p) * r)
        elif kind == "allreduce":
            res = yield from comm.allreduce(float(r + 1), op=SUM,
                                            nbytes=nb)
        elif kind == "rsb":
            res = yield from comm.reduce_scatter_block(
                [r * 100 + d for d in range(p)], op=SUM, nbytes=nb)
        else:
            raise AssertionError(kind)
        # trailing round: laggards of the round above are still walking
        # while early ranks enter here, so cross-round ordering matters
        res2 = yield from comm.allreduce(r * 2 + 1, op=SUM, nbytes=8)
        return comm.now, res, res2

    return program


KINDS = ["barrier", "allgather", "allgather_none", "alltoall",
         "alltoall_np", "allreduce", "rsb"]


@pytest.mark.parametrize("p,cpn", [(2, 1), (5, 2), (8, 4), (13, 4)])
@pytest.mark.parametrize("kind", KINDS)
def test_grid_eager_with_skew(p, cpn, kind):
    assert_macro_matches_detailed(p, cpn, grid_program(kind, p, 8, 3e-4))


@pytest.mark.parametrize("kind", ["allgather", "alltoall", "allreduce",
                                  "rsb"])
@pytest.mark.parametrize("nb", [4096, 200000])
def test_grid_rendezvous_sizes(kind, nb):
    # 200000 bytes is far past the eager threshold: the walker must
    # replay the header/CTS/data rendezvous protocol, not just eager
    assert_macro_matches_detailed(7, 3, grid_program(kind, 7, nb, 0.0))
    assert_macro_matches_detailed(8, 4, grid_program(kind, 8, nb, 3e-4))


def test_back_to_back_mixed_rounds():
    def program(comm):
        r = comm.rank
        yield from comm.barrier()
        a = yield from comm.allgather(r, nbytes=4096)
        b = yield from comm.alltoall(list(range(comm.size)),
                                     nbytes_each=64)
        yield Sleep(1e-6 * r)
        c = yield from comm.allreduce(r, op=SUM)
        return comm.now, a, b, c

    assert_macro_matches_detailed(8, 4, program)


def test_disjoint_subcommunicators_overlap():
    def program(comm):
        r = comm.rank
        sub = yield from comm.split(color=r % 2, key=r)
        yield Sleep(2e-4 * (r % 3))
        a = yield from sub.allgather(r, nbytes=512)
        b = yield from comm.allreduce(r, op=SUM, nbytes=8)
        return comm.now, a, b

    assert_macro_matches_detailed(8, 2, program)


def test_nic_fault_profiles_replay_bit_identically():
    # piecewise-degraded and stalled NICs exercise the profiled
    # reserve_span path inside the walker's transfer replica
    assert_macro_matches_detailed(
        6, 2, grid_program("alltoall", 6, 256, 3e-4),
        profile_nodes=(0, 1))


def test_hybrid_sync_macro_matches_detailed():
    prog = grid_program("allreduce", 6, 8, 3e-4)
    det = run_world("detailed", 6, 2, prog)
    hyb = run_world("hybrid:sync=macro,default=detailed", 6, 2, prog)
    assert det == hyb


def test_sizethreshold_composes_with_macro_world():
    # a sizethreshold world never calls macro, but a macro world must
    # agree with detailed even when the workload straddles the eager
    # threshold in both directions
    def program(comm):
        a = yield from comm.allgather(comm.rank, nbytes=64)
        b = yield from comm.allgather(comm.rank, nbytes=1 << 16)
        return comm.now, a, b

    assert_macro_matches_detailed(6, 3, program)


def test_with_backend_per_handle_override():
    def make(mode):
        def program(comm):
            fast = comm.with_backend(mode)
            a = yield from fast.allreduce(comm.rank, op=SUM, nbytes=8)
            b = yield from comm.allgather(comm.rank, nbytes=8)
            return comm.now, a, b

        return program

    det = run_world("detailed", 6, 2, make("detailed"))
    mac = run_world("detailed", 6, 2, make("macro"))
    assert det == mac


def test_size_one_comm_falls_back():
    def program(comm):
        sub = yield from comm.split(color=comm.rank, key=0)
        a = yield from sub.allreduce(comm.rank, op=SUM)
        b = yield from comm.barrier()
        return comm.now, a, b

    assert_macro_matches_detailed(4, 2, program)


def test_zero_latency_network_falls_back():
    # latency == 0 breaks the walker's usability precondition; macro
    # must detect it and run the detailed per-message path
    assert_macro_matches_detailed(5, 2,
                                  grid_program("allgather", 5, 8, 0.0),
                                  latency=0.0)


def test_mismatched_collectives_raise():
    def program(comm):
        if comm.rank == 0:
            yield from comm.barrier()
        else:
            yield from comm.allgather(comm.rank)

    world = World(MachineConfig(nprocs=2, cores_per_node=2),
                  collective_mode="macro",
                  net_params=NetworkParams())
    with pytest.raises(MPIError):
        world.launch(program)


def test_macro_counters_increment():
    before_rounds = perf_counters.macro_rounds
    before_msgs = perf_counters.messages_coalesced
    run_world("macro", 8, 4, grid_program("alltoall", 8, 64, 0.0))
    assert perf_counters.macro_rounds > before_rounds
    assert perf_counters.messages_coalesced > before_msgs


def test_macro_dispatches_fewer_events():
    def count_events(mode):
        world = World(MachineConfig(nprocs=16, cores_per_node=4),
                      collective_mode=mode,
                      net_params=NetworkParams())

        def program(comm):
            for _ in range(3):
                yield from comm.alltoall(list(range(comm.size)),
                                         nbytes_each=64)
            return comm.now

        det = world.launch(program)
        return det, world.engine.effects_dispatched

    det_res, det_events = count_events("detailed")
    mac_res, mac_events = count_events("macro")
    assert det_res == mac_res
    assert mac_events < det_events / 4
