"""How validation threads through the stack: hints, configs, executor,
run cache, and the close-time oracle hook."""

import numpy as np
import pytest

from repro.datatypes import BYTE
from repro.errors import ValidationError
from repro.harness.parallel import ExperimentExecutor, ExperimentTask, RunCache
from repro.harness.runner import ExperimentConfig
from repro.validate import ORACLE_VERSION, env_validate_enabled
from repro.workloads import TileIOConfig
from repro.workloads.base import deterministic_bytes
from repro.workloads.synthetic import SyntheticConfig, filetype_for
from tests.conftest import Stack

LUSTRE = {"n_osts": 4, "default_stripe_count": 4, "default_stripe_size": 1024}


def tile_task(validate=False, **hints):
    wl = TileIOConfig(tile_rows=32, tile_cols=32, element_size=8,
                      hints=hints or None)
    cfg = ExperimentConfig(nprocs=8, lustre=LUSTRE, validate=validate)
    return ExperimentTask(cfg, "tile_io", wl)


class TestEnvSwitch:
    @pytest.mark.parametrize("raw,on", [
        ("", False), ("0", False), ("false", False), ("no", False),
        ("off", False), ("1", True), ("true", True), ("yes", True),
    ])
    def test_env_values(self, raw, on):
        assert env_validate_enabled({"REPRO_VALIDATE": raw}) is on

    def test_unset_means_off(self):
        assert env_validate_enabled({}) is False


class TestHintPlumbing:
    def run_synth(self, hints):
        cfg = SyntheticConfig(pattern="interleaved", nprocs=4,
                              bytes_per_rank=1024, piece_bytes=128)
        stack = Stack(nprocs=4, stripe_size=512)

        def program(comm, io):
            ft = filetype_for(cfg, comm.rank)
            f = yield from io.open(comm, "v", hints=hints)
            f.set_view(comm.rank * cfg.piece_bytes, BYTE, ft)
            data = deterministic_bytes(comm.rank, ft.size)
            yield from f.write_at_all(0, data)
            got = yield from f.read_at_all(0, ft.size)
            yield from f.close()
            return got

        stack.run(program)
        return stack.io

    def test_hint_enables_validator(self):
        io = self.run_synth({"protocol": "parcoll", "parcoll_ngroups": 2,
                             "parcoll_validate": True})
        report = io.validator.report
        assert report.ok
        assert report.checks["file_oracle_bytes"] >= 1
        assert report.checks["read_oracle"] >= 1
        assert report.checks["fa_partition"] >= 1

    def test_default_is_off(self):
        io = self.run_synth({"protocol": "parcoll", "parcoll_ngroups": 2})
        assert io.validator is None

    def test_hint_false_forces_off_even_when_platform_validates(self):
        stack = Stack(nprocs=2)
        stack.io.validator = None
        from repro.validate import Validator

        stack.io.validator = Validator()

        def program(comm, io):
            f = yield from io.open(comm, "off",
                                   hints={"parcoll_validate": False})
            yield from f.write_at_all(
                comm.rank * 4, np.full(4, comm.rank, dtype=np.uint8))
            yield from f.close()

        stack.run(program)
        assert stack.io.validator.report.total_checks == 0

    def test_oracle_fires_through_close(self):
        stack = Stack(nprocs=2)

        def program(comm, io):
            f = yield from io.open(comm, "bad",
                                   hints={"parcoll_validate": True})
            yield from f.write_at_all(
                comm.rank * 4, np.full(4, 1 + comm.rank, dtype=np.uint8))
            if comm.rank == 0:
                # poison the oracle: claim bytes the fs never saw
                io.validator.record_write(
                    f.lfile,
                    (np.array([64], dtype=np.int64),
                     np.array([2], dtype=np.int64)),
                    np.array([9, 9], dtype=np.uint8))
            yield from f.close()

        with pytest.raises(ValidationError, match="file_oracle"):
            stack.run(program)


class TestCacheKeys:
    def test_validate_flag_changes_key(self):
        assert tile_task().cache_key() != tile_task(validate=True).cache_key()

    def test_oracle_version_rolls_validated_keys_only(self, monkeypatch):
        import repro.validate.oracle as oracle_mod

        plain = tile_task().cache_key()
        validated = tile_task(validate=True).cache_key()
        monkeypatch.setattr(oracle_mod, "ORACLE_VERSION",
                            ORACLE_VERSION + 1)
        # the key reads the live package attribute
        import repro.validate as validate_pkg

        monkeypatch.setattr(validate_pkg, "ORACLE_VERSION",
                            ORACLE_VERSION + 1)
        assert tile_task().cache_key() == plain
        assert tile_task(validate=True).cache_key() != validated


class TestExecutorValidate:
    def test_cached_unvalidated_run_not_reused_for_validate(self, tmp_path):
        cache = RunCache(tmp_path)
        plain = ExperimentExecutor(cache=cache)
        task = tile_task(protocol="parcoll", parcoll_ngroups=2)
        r0 = plain.run(task)
        assert r0.validation is None
        checking = ExperimentExecutor(cache=cache, validate=True)
        r1 = checking.run(task)
        assert r1.validation is not None
        assert r1.validation["violations"] == []
        assert sum(r1.validation["checks"].values()) > 0
        # virtual-time results are identical with the oracle on
        assert r1.elapsed_total == r0.elapsed_total
        # and the validated result was cached under its own key
        r2 = checking.run(task)
        assert r2.validation is not None
        assert checking.cache.hits >= 1

    def test_from_env_reads_repro_validate(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        assert ExperimentExecutor.from_env(cache=False).validate is True
        monkeypatch.setenv("REPRO_VALIDATE", "0")
        assert ExperimentExecutor.from_env(cache=False).validate is False

    def test_run_result_carries_validation_report(self):
        res = tile_task(validate=True, protocol="parcoll",
                        parcoll_ngroups=4).run()
        assert res.validation is not None
        checks = res.validation["checks"]
        for name in ("fa_partition", "aggregator_distribution",
                     "exchange_plan", "file_oracle_extents"):
            assert checks.get(name, 0) >= 1, name


class TestIndependentReadGap:
    """Independent ``read_at`` is oracle-checked via the shadow file's
    happens-before tracker (closed PR 5/7 carry-over): reads that
    provably happen after every overlapping write are byte-checked,
    reads racing an in-flight write are counted as skipped."""

    def test_independent_read_at_is_oracle_checked(self):
        from repro.validate import Validator

        stack = Stack(nprocs=4)
        stack.io.validator = Validator()
        n = 512

        def program(comm, io):
            f = yield from io.open(comm, "ind")
            data = deterministic_bytes(comm.rank, n)
            yield from f.write_at(comm.rank * n, data)
            # the barrier orders every read after every write, so a
            # happens-before tracker would have full coverage here
            yield from comm.barrier()
            got = yield from f.read_at(((comm.rank + 1) % 4) * n, n)
            yield from f.close()
            return got

        results = stack.run(program)
        for r, got in enumerate(results):
            expected = deterministic_bytes((r + 1) % 4, n)
            assert np.array_equal(np.asarray(got, np.uint8), expected)
        report = stack.io.validator.report
        assert report.ok
        assert report.checks["read_oracle"] >= 4
        assert report.checks.get("read_oracle_skipped", 0) == 0

    def test_read_racing_pending_write_is_skipped_not_judged(self):
        import numpy as np

        from repro.validate.oracle import ShadowFile

        sh = ShadowFile("race", verified=True)
        seg = lambda o, n: (np.array([o], dtype=np.int64),
                            np.array([n], dtype=np.int64))
        t0 = sh.record(seg(0, 64), np.zeros(64, np.uint8))
        assert sh.pending_writes == 1
        # overlapping read while the write is in flight: not checkable
        assert not sh.checkable_read(seg(32, 8))
        # disjoint read is fine even with a write pending
        assert sh.checkable_read(seg(128, 8))
        sh.complete(t0)
        assert sh.checkable_read(seg(32, 8))

    def test_unordered_racing_writers_blind_the_read_oracle_forever(self):
        import numpy as np

        from repro.validate.oracle import ShadowFile

        sh = ShadowFile("race2", verified=True)
        seg = lambda o, n: (np.array([o], dtype=np.int64),
                            np.array([n], dtype=np.int64))
        t0 = sh.record(seg(0, 64), np.zeros(64, np.uint8))
        t1 = sh.record(seg(32, 64), np.ones(64, np.uint8))  # races t0
        sh.complete(t0)
        sh.complete(t1)
        # both landed, but in undefined order: stays uncheckable
        assert not sh.checkable_read(seg(40, 8))
        assert sh.checkable_read(seg(200, 8))
