"""Harness: runner, report formatting, sweeps, CLI."""

from functools import partial

import pytest

from repro.errors import ConfigError
from repro.harness import ExperimentConfig, format_table, mb_per_s, run_experiment
from repro.harness.report import format_cell, pct
from repro.harness.sweep import Sweep
from repro.workloads import IORConfig, TileIOConfig, ior_program, tile_io_program


def tiny_tile(nprocs=8, **hints):
    wl = TileIOConfig(tile_rows=32, tile_cols=32, element_size=8,
                      hints=hints or None)
    cfg = ExperimentConfig(nprocs=nprocs,
                           lustre={"n_osts": 4, "default_stripe_count": 4,
                                   "default_stripe_size": 1024})
    return cfg, partial(tile_io_program, wl)


class TestRunner:
    def test_run_returns_per_rank_stats(self):
        cfg, prog = tiny_tile()
        res = run_experiment(cfg, prog)
        assert len(res.per_rank) == 8
        assert all(s.bytes_written == 32 * 32 * 8 for s in res.per_rank)
        assert res.write_bandwidth > 0
        assert res.events > 0
        assert res.elapsed_total > 0

    def test_breakdown_categories_present(self):
        cfg, prog = tiny_tile()
        res = run_experiment(cfg, prog)
        assert "sync" in res.breakdown
        assert "meta" in res.breakdown
        assert 0 <= res.category_share("sync") <= 1

    def test_deterministic_across_runs(self):
        r1 = run_experiment(*tiny_tile())
        r2 = run_experiment(*tiny_tile())
        assert r1.write_bandwidth == r2.write_bandwidth
        assert r1.elapsed_total == r2.elapsed_total

    def test_seed_changes_jitter(self):
        wl = TileIOConfig(tile_rows=32, tile_cols=32, element_size=8)
        lustre = {"n_osts": 4, "default_stripe_count": 4,
                  "default_stripe_size": 1024, "jitter": 0.3}
        r1 = run_experiment(ExperimentConfig(nprocs=8, lustre=lustre, seed=1),
                            partial(tile_io_program, wl))
        r2 = run_experiment(ExperimentConfig(nprocs=8, lustre=lustre, seed=2),
                            partial(tile_io_program, wl))
        assert r1.elapsed_total != r2.elapsed_total

    def test_program_must_return_stats(self):
        def bad_program(comm, io):
            yield from comm.barrier()
            return 42

        cfg, _ = tiny_tile()
        with pytest.raises(ConfigError):
            run_experiment(cfg, bad_program)

    def test_torus_platform_builds(self):
        cfg = ExperimentConfig(nprocs=8, use_torus=True,
                               net={"hop_latency": 1e-7},
                               lustre={"n_osts": 4,
                                       "default_stripe_count": 4})
        _, prog = tiny_tile()
        res = run_experiment(cfg, prog)
        assert res.write_bandwidth > 0

    def test_read_bandwidth_zero_without_reads(self):
        res = run_experiment(*tiny_tile())
        assert res.read_bandwidth == 0.0


class TestReport:
    def test_mb_per_s(self):
        assert mb_per_s(5e8) == 500.0

    def test_pct(self):
        assert pct(0.725) == "72.5%"

    def test_format_cell(self):
        assert format_cell(0.0) == "0"
        assert format_cell(12345.0) == "12,345"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(0.00123) == "0.00123"
        assert format_cell("x") == "x"

    def test_format_table_alignment(self):
        text = format_table(["a", "col"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].endswith("col")
        assert len({len(line) for line in lines[1:]}) == 1  # equal widths


class TestSweep:
    def make_sweep(self):
        def factory(ngroups):
            hints = ({"protocol": "ext2ph"} if ngroups == 1 else
                     {"protocol": "parcoll", "parcoll_ngroups": ngroups})
            return tiny_tile(nprocs=16, **hints)

        return Sweep("groups", factory)

    def test_points_cached(self):
        sweep = self.make_sweep()
        p1 = sweep.at(2)
        p2 = sweep.at(2)
        assert p1 is p2

    def test_best_picks_max_bandwidth(self):
        sweep = self.make_sweep()
        best = sweep.best([1, 2, 4])
        assert best.write_mb_s == max(
            sweep.at(g).write_mb_s for g in (1, 2, 4))

    def test_golden_section_stays_in_range(self):
        sweep = self.make_sweep()
        best = sweep.golden_section_max(1, 8)
        assert best.value in (1, 2, 4, 8)

    def test_table_renders(self):
        sweep = self.make_sweep()
        text = sweep.table([1, 2])
        assert "groups" in text
        assert "write MB/s" in text


class TestGoldenSection:
    """Edge cases of the power-of-two ternary search and its eval budget."""

    def counting_sweep(self):
        calls = []

        def factory(g):
            calls.append(g)
            hints = ({"protocol": "ext2ph"} if g == 1 else
                     {"protocol": "parcoll", "parcoll_ngroups": g})
            return tiny_tile(nprocs=16, **hints)

        return Sweep("groups", factory), calls

    def test_single_element_ladder(self):
        sweep, calls = self.counting_sweep()
        best = sweep.golden_section_max(4, 4)
        assert best.value == 4
        assert calls == [4]

    def test_lo_equals_hi_at_one(self):
        sweep, calls = self.counting_sweep()
        assert sweep.golden_section_max(1, 1).value == 1
        assert calls == [1]

    def test_non_power_of_two_bounds(self):
        # the ladder is lo, 2*lo, 4*lo, ... clipped at hi: [3, 6, 12]
        sweep, calls = self.counting_sweep()
        best = sweep.golden_section_max(3, 20)
        assert best.value in (3, 6, 12)
        assert set(calls) <= {3, 6, 12}

    def test_empty_range_raises(self):
        sweep, _ = self.counting_sweep()
        with pytest.raises(ValueError, match="empty search range"):
            sweep.golden_section_max(16, 8)

    def test_each_point_runs_at_most_once(self):
        sweep, calls = self.counting_sweep()
        sweep.golden_section_max(1, 16)
        assert len(calls) == len(set(calls))

    def test_memoized_probes_are_free(self):
        # pre-warm the whole ladder: the search must not run anything new
        sweep, calls = self.counting_sweep()
        sweep.run([1, 2, 4, 8, 16])
        warm = list(calls)
        best = sweep.golden_section_max(1, 16, max_evals=0)
        assert calls == warm  # zero fresh evaluations
        assert best.write_mb_s == max(
            sweep.at(g).write_mb_s for g in (1, 2, 4, 8, 16))

    def test_plateau_curve_converges(self):
        # a constant objective must terminate and return a ladder point
        sweep, calls = self.counting_sweep()
        best = sweep.golden_section_max(1, 16, key=lambda pt: 1.0)
        assert best.value in (1, 2, 4, 8, 16)
        assert len(calls) <= 5

    def test_budget_bounds_fresh_runs(self):
        sweep, calls = self.counting_sweep()
        sweep.golden_section_max(1, 64, max_evals=2)
        # one probe pair, then the final best over the shrunken bracket;
        # the bracket holds at most 5 untouched ladder points here
        assert len(calls) <= 2 + 5


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure  5" in out

    def test_figure_5(self, capsys):
        from repro.cli import main

        assert main(["figure", "5"]) == 0
        assert "N0(P0), N1(P2)" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        from repro.cli import main

        assert main(["figure", "99"]) == 2
        assert "unknown figure" in capsys.readouterr().err
