"""Aggregator distribution: the paper's Figure 5 worked examples + invariants."""

import pytest

from repro.cluster import Machine, MachineConfig
from repro.errors import ParCollError
from repro.parcoll import distribute_aggregators


def machine(mapping):
    return Machine(MachineConfig(nprocs=8, cores_per_node=2, mapping=mapping))


GROUPS = [[0, 1, 2, 3], [4, 5, 6, 7]]
WORLD = list(range(8))


class TestFigure5:
    def test_block_mapping_four_aggregators(self):
        """Figure 5, block column: aggregators N0..N3 = P0,P2,P4,P6.

        Expected: SubGroup1 gets N0(P0), N1(P2); SubGroup2 gets N2(P4),
        N3(P6).
        """
        m = machine("block")
        out = distribute_aggregators(GROUPS, [0, 2, 4, 6], WORLD, m)
        assert out == [[0, 2], [4, 6]]

    def test_cyclic_mapping_three_aggregators(self):
        """Figure 5, cyclic column: aggregators on N0, N2, N3 (P0, P2, P3).

        Expected: SubGroup1 gets N0(P0) and N3(P3); SubGroup2 gets N2(P6).
        """
        m = machine("cyclic")
        out = distribute_aggregators(GROUPS, [0, 2, 3], WORLD, m)
        assert out == [[0, 3], [6]]


class TestRequirements:
    def test_every_group_gets_at_least_one(self):
        # aggregator nodes all live in group 0's half (block mapping)
        m = machine("block")
        out = distribute_aggregators(GROUPS, [0, 2], WORLD, m)
        assert out[0]  # got real slots
        assert out[1] == [4]  # fallback: lowest member

    def test_no_node_split_across_groups(self):
        m = machine("cyclic")
        out = distribute_aggregators(GROUPS, [0, 1, 2, 3], WORLD, m)
        nodes_per_group = [
            {m.node_of_rank(WORLD[r]) for r in aggs} for aggs in out
        ]
        assert nodes_per_group[0].isdisjoint(nodes_per_group[1])

    def test_even_distribution(self):
        m = machine("block")
        out = distribute_aggregators(GROUPS, [0, 2, 4, 6], WORLD, m)
        assert abs(len(out[0]) - len(out[1])) <= 1

    def test_aggregator_is_member_of_its_group(self):
        for mapping in ("block", "cyclic"):
            m = machine(mapping)
            out = distribute_aggregators(GROUPS, [0, 1, 2, 3], WORLD, m)
            for gi, aggs in enumerate(out):
                for a in aggs:
                    assert a in GROUPS[gi]

    def test_four_groups_two_aggregator_nodes(self):
        m = machine("block")
        groups = [[0, 1], [2, 3], [4, 5], [6, 7]]
        out = distribute_aggregators(groups, [0, 4], WORLD, m)
        # groups 1 and 3 have no aggregator node: fall back to lowest member
        assert out == [[0], [2], [4], [6]]

    def test_duplicate_nodes_in_agg_list_deduplicated(self):
        m = machine("block")
        # ranks 0 and 1 share node 0
        out = distribute_aggregators(GROUPS, [0, 1, 4], WORLD, m)
        assert out == [[0], [4]]

    def test_empty_inputs_rejected(self):
        m = machine("block")
        with pytest.raises(ParCollError):
            distribute_aggregators([], [0], WORLD, m)
        with pytest.raises(ParCollError):
            distribute_aggregators([[0], []], [0], WORLD, m)
        with pytest.raises(ParCollError):
            distribute_aggregators(GROUPS, [], WORLD, m)

    def test_many_groups_round_robin_order(self):
        # 16 ranks, 8 nodes, 4 groups, all 8 node slots available
        m = Machine(MachineConfig(nprocs=16, cores_per_node=2, mapping="block"))
        groups = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12, 13, 14, 15]]
        out = distribute_aggregators(groups, [0, 2, 4, 6, 8, 10, 12, 14],
                                     list(range(16)), m)
        assert [len(a) for a in out] == [2, 2, 2, 2]
        assert out == [[0, 2], [4, 6], [8, 10], [12, 14]]
