"""The collective-protocol registry: resolution, symmetry, shared state.

Covers the registry seam itself (spec parsing, unknown-protocol errors,
option handling), the per-file protocol symmetry ledger (rank-divergent
hints fail loudly), the per-protocol shared-state slots (hint changes
invalidate cached plans mid-file), and the platform-default threading
(``MPIIO(default_hints=...)``, ``ExperimentConfig.protocol``,
:func:`~repro.harness.sweep.protocol_sweep`).
"""

import numpy as np
import pytest

from repro.errors import MPIIOError, ParCollError
from repro.mpiio import MPIIO, IOHints
from repro.mpiio.protocols import (CollectiveProtocol, available_protocols,
                                   resolve_protocol)
from repro.workloads.base import deterministic_bytes
from tests.conftest import Stack

BUILTINS = {"ext2ph", "independent", "listio", "nodeagg", "parcoll"}


class TestRegistry:
    def test_builtins_registered(self):
        assert BUILTINS <= set(available_protocols())

    def test_resolve_returns_protocol_instances(self):
        for name in available_protocols():
            proto = resolve_protocol(name)
            assert isinstance(proto, CollectiveProtocol)
            assert proto.name == name

    def test_instance_passthrough(self):
        proto = resolve_protocol("ext2ph")
        assert resolve_protocol(proto) is proto

    def test_unknown_protocol_lists_registered(self):
        with pytest.raises(ParCollError, match="registered protocols"):
            resolve_protocol("magic")

    def test_non_string_spec_rejected(self):
        with pytest.raises(ParCollError):
            resolve_protocol(42)

    def test_options_rejected_where_unsupported(self):
        with pytest.raises(ParCollError):
            resolve_protocol("ext2ph:whatever")

    def test_listio_spec_options(self):
        assert resolve_protocol("listio:16").describe() == "listio:16"
        assert resolve_protocol("listio").describe() == "listio"
        with pytest.raises(ParCollError):
            resolve_protocol("listio:zero")
        with pytest.raises(ParCollError):
            resolve_protocol("listio:0")

    def test_hints_validate_against_registry(self):
        with pytest.raises(MPIIOError):
            IOHints(protocol="magic")
        assert IOHints(protocol="listio:8").protocol == "listio:8"
        with pytest.raises(MPIIOError):
            IOHints(listio_max_segments=0)


class TestSymmetryLedger:
    def test_rank_divergent_protocol_raises(self):
        st = Stack(nprocs=4)

        def program(comm, io):
            proto = "ext2ph" if comm.rank == 0 else "independent"
            f = yield from io.open(comm, "div", hints={"protocol": proto})
            yield from f.write_at_all(
                comm.rank * 8, np.full(8, comm.rank, dtype=np.uint8))
            yield from f.close()

        with pytest.raises(ParCollError, match="protocol mismatch"):
            st.run(program)

    def test_symmetric_switch_is_fine(self):
        st = Stack(nprocs=4)

        def program(comm, io):
            f = yield from io.open(comm, "sym",
                                   hints={"protocol": "ext2ph"})
            yield from f.write_at_all(
                comm.rank * 8, np.full(8, 1 + comm.rank, dtype=np.uint8))
            f.set_hints(protocol="independent")
            yield from f.write_at_all(
                32 + comm.rank * 8, np.full(8, 5 + comm.rank, np.uint8))
            yield from f.close()

        st.run(program)
        got = st.file_bytes("sym")
        assert got.size == 64
        assert got[0] == 1 and got[32] == 5

    def test_ledger_drains(self):
        st = Stack(nprocs=2)
        seen = {}

        def program(comm, io):
            f = yield from io.open(comm, "drain",
                                   hints={"protocol": "ext2ph"})
            yield from f.write_at_all(comm.rank * 4, np.ones(4, np.uint8))
            yield from f.close()
            seen[comm.rank] = dict(f.shared.protocol_ops)

        st.run(program)
        assert all(ops == {} for ops in seen.values())


class TestStateInvalidation:
    """Satellite: hint changes must drop cached per-protocol state."""

    def _tiled_write(self, f, comm, base, ngroups_salt):
        data = deterministic_bytes(comm.rank + ngroups_salt, 256)
        return f.write_at_all(base + comm.rank * 256, data)

    def test_protocol_switch_drops_parcoll_cache(self):
        st = Stack(nprocs=4)
        observed = {}

        def program(comm, io):
            f = yield from io.open(
                comm, "sw", hints={"protocol": "parcoll",
                                   "parcoll_ngroups": 2})
            yield from self._tiled_write(f, comm, 0, 0)
            # barrier-sandwich the observation: no rank may reach
            # set_hints (which clears shared state) before rank 0 looks
            yield from comm.barrier()
            if comm.rank == 0:
                observed["populated"] = len(f.shared.parcoll_cache) > 0
            yield from comm.barrier()
            f.set_hints(protocol="ext2ph")
            yield from comm.barrier()
            if comm.rank == 0:
                # the ext2ph epoch has not started yet; the parcoll slot
                # must be gone (an empty slot from the property is fine)
                observed["after_switch"] = len(f.shared.parcoll_cache)
            yield from comm.barrier()
            yield from self._tiled_write(f, comm, 1024, 1)
            yield from f.close()

        st.run(program)
        assert observed["populated"]
        assert observed["after_switch"] == 0
        # both epochs' bytes landed correctly
        got = st.file_bytes("sw")
        np.testing.assert_array_equal(got[:256], deterministic_bytes(0, 256))
        np.testing.assert_array_equal(got[1024:1280],
                                      deterministic_bytes(1, 256))

    def test_ngroups_change_drops_stale_plan(self):
        """Regression: a ParColl plan cached under the old group count
        must not drive collectives after ``parcoll_ngroups`` changes
        mid-file (the grouping no longer matches the hints)."""
        st = Stack(nprocs=4)
        caches = {}

        def program(comm, io):
            f = yield from io.open(
                comm, "re", hints={"protocol": "parcoll",
                                   "parcoll_ngroups": 2})
            yield from self._tiled_write(f, comm, 0, 0)
            yield from comm.barrier()
            if comm.rank == 0:
                caches["before"] = len(f.shared.parcoll_cache)
            yield from comm.barrier()
            f.set_info({"parcoll_ngroups": 4})
            yield from comm.barrier()
            if comm.rank == 0:
                caches["after"] = len(f.shared.parcoll_cache)
            yield from comm.barrier()
            # a *different* extent under replan='once' would trip the
            # stale-plan guard if the old plan survived the hint change
            yield from self._tiled_write(f, comm, 4096, 2)
            yield from f.close()

        st.run(program)
        assert caches["before"] > 0
        assert caches["after"] == 0
        got = st.file_bytes("re")
        np.testing.assert_array_equal(got[4096:4352],
                                      deterministic_bytes(2, 256))

    def test_unrelated_hint_keeps_state(self):
        st = Stack(nprocs=4)
        kept = {}

        def program(comm, io):
            f = yield from io.open(
                comm, "keep", hints={"protocol": "parcoll",
                                     "parcoll_ngroups": 2})
            yield from self._tiled_write(f, comm, 0, 0)
            f.set_hints(listio_max_segments=8)
            yield from comm.barrier()
            if comm.rank == 0:
                kept["cache"] = len(f.shared.parcoll_cache)
            yield from f.close()

        st.run(program)
        assert kept["cache"] > 0


class TestDefaultHints:
    def test_mpiio_default_hints_apply(self):
        st = Stack(nprocs=2)
        st.io.default_hints = {"protocol": "listio"}
        protos = {}

        def program(comm, io):
            f = yield from io.open(comm, "dflt")
            protos["default"] = f.hints.protocol
            g = yield from io.open(comm, "over",
                                   hints={"protocol": "ext2ph"})
            protos["explicit"] = g.hints.protocol
            yield from f.close()
            yield from g.close()

        st.run(program)
        assert protos == {"default": "listio", "explicit": "ext2ph"}

    def test_experiment_config_threads_protocol(self):
        from repro.harness.runner import ExperimentConfig

        _world, _fs, io = ExperimentConfig(nprocs=4,
                                           protocol="nodeagg").build()
        assert io.default_hints == {"protocol": "nodeagg"}
        assert isinstance(io, MPIIO)

    def test_protocol_sweep_axis(self):
        from repro.harness.runner import ExperimentConfig
        from repro.harness.sweep import protocol_sweep
        from repro.workloads import TileIOConfig

        sweep = protocol_sweep(
            "race", ExperimentConfig(nprocs=4),
            "tile_io", TileIOConfig(tile_rows=16, tile_cols=8,
                                    element_size=64))
        points = sweep.run(["independent", "ext2ph"])
        assert [pt.result.config.protocol for pt in points] == [
            "independent", "ext2ph"]
        assert all(pt.result.elapsed_total > 0 for pt in points)
        # protocols genuinely differ: event counts diverge
        assert points[0].result.events != points[1].result.events
