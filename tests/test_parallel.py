"""Parallel experiment execution: executor, run cache, task descriptors."""

import pickle

import pytest

from repro.errors import ConfigError
from repro.harness.parallel import (ExperimentExecutor, ExperimentTask,
                                    RemoteTraceback, RunCache,
                                    available_workloads, code_version,
                                    default_cache_dir, register_workload,
                                    workload_factory)
from repro.harness.runner import ExperimentConfig
from repro.workloads import TileIOConfig

LUSTRE = {"n_osts": 4, "default_stripe_count": 4, "default_stripe_size": 1024}


def tile_task(nprocs=8, rows=32, **hints):
    wl = TileIOConfig(tile_rows=rows, tile_cols=32, element_size=8,
                      hints=hints or None)
    return ExperimentTask(ExperimentConfig(nprocs=nprocs, lustre=LUSTRE),
                          "tile_io", wl)


class TestTaskDescriptor:
    def test_round_trips_through_pickle(self):
        task = tile_task(protocol="parcoll", parcoll_ngroups=2)
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
        assert clone.cache_key() == task.cache_key()

    def test_builtin_workloads_registered(self):
        names = available_workloads()
        for name in ("tile_io", "ior", "btio", "flash_io"):
            assert name in names

    def test_unknown_workload_fails_fast(self):
        with pytest.raises(ConfigError, match="unknown workload factory"):
            workload_factory("nope")
        task = ExperimentTask(ExperimentConfig(nprocs=4), "nope")
        with pytest.raises(ConfigError, match="unknown workload factory"):
            ExperimentExecutor().run_many([task])

    def test_custom_registration(self):
        def program(wl, comm, io):  # pragma: no cover - never run
            yield None

        register_workload("custom_for_test", program)
        assert workload_factory("custom_for_test") is program

    def test_run_matches_run_experiment(self):
        from functools import partial

        from repro.harness.runner import run_experiment

        task = tile_task()
        direct = run_experiment(task.config,
                                partial(workload_factory("tile_io"),
                                        task.workload_config))
        via_task = task.run()
        assert via_task.write_bandwidth == direct.write_bandwidth
        assert via_task.events == direct.events

    def test_rejects_non_tasks(self):
        with pytest.raises(ConfigError, match="ExperimentTask"):
            ExperimentExecutor().run_many([lambda: None])


class TestCacheKey:
    def test_stable_across_instances(self):
        assert tile_task().cache_key() == tile_task().cache_key()

    def test_changes_with_experiment_config(self):
        assert tile_task(nprocs=8).cache_key() != tile_task(nprocs=16).cache_key()

    def test_changes_with_workload_config(self):
        assert (tile_task(rows=32).cache_key()
                != tile_task(rows=64).cache_key())
        assert (tile_task(protocol="ext2ph").cache_key()
                != tile_task(protocol="parcoll",
                             parcoll_ngroups=2).cache_key())

    def test_changes_with_workload_name(self):
        cfg = ExperimentConfig(nprocs=8, lustre=LUSTRE)
        wl = TileIOConfig(tile_rows=32, tile_cols=32, element_size=8)
        a = ExperimentTask(cfg, "tile_io", wl)
        b = ExperimentTask(cfg, "ior", wl)
        assert a.cache_key() != b.cache_key()

    def test_includes_code_version(self, monkeypatch):
        task = tile_task()
        before = task.cache_key()
        monkeypatch.setattr("repro.harness.parallel._CODE_VERSION",
                            "deadbeef")
        assert task.cache_key() != before

    def test_code_version_is_memoized_hex(self):
        v = code_version()
        assert v == code_version()
        int(v, 16)
        assert len(v) == 64


class TestRunCache:
    def test_miss_then_hit(self, tmp_path):
        cache = RunCache(tmp_path)
        task = tile_task()
        key = task.cache_key()
        assert cache.get(key) is None
        result = task.run()
        cache.put(key, result)
        hit = cache.get(key)
        assert hit is not None
        assert hit.write_bandwidth == result.write_bandwidth
        assert cache.hits == 1 and cache.misses == 1

    def test_config_change_misses(self, tmp_path):
        cache = RunCache(tmp_path)
        t8 = tile_task(nprocs=8)
        cache.put(t8.cache_key(), t8.run())
        assert cache.get(tile_task(nprocs=16).cache_key()) is None

    def test_code_version_change_invalidates(self, tmp_path, monkeypatch):
        cache = RunCache(tmp_path)
        task = tile_task()
        cache.put(task.cache_key(), task.run())
        monkeypatch.setattr("repro.harness.parallel._CODE_VERSION", "f00d")
        assert cache.get(task.cache_key()) is None

    def test_corrupted_entry_recomputes(self, tmp_path):
        cache = RunCache(tmp_path)
        task = tile_task()
        key = task.cache_key()
        cache.put(key, task.run())
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:17])  # truncate mid-pickle
        assert cache.get(key) is None  # corrupted -> miss + removed
        assert not path.exists()
        # executor transparently recomputes and re-stores
        ex = ExperimentExecutor(jobs=1, cache=cache)
        res = ex.run(task)
        assert res.write_bandwidth > 0
        assert path.exists()

    def test_garbage_object_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        key = tile_task().cache_key()
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"not": "a RunResult"}))
        assert cache.get(key) is None

    def test_len_and_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        for n in (4, 8):
            t = tile_task(nprocs=n)
            cache.put(t.cache_key(), t.run())
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_unwritable_directory_degrades(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the cache dir should be")
        cache = RunCache(blocker / "sub")
        task = tile_task()
        cache.put(task.cache_key(), task.run())  # must not raise
        ex = ExperimentExecutor(jobs=1, cache=cache)
        assert ex.run(task).write_bandwidth > 0

    def test_stats_counters(self, tmp_path):
        cache = RunCache(tmp_path)
        task = tile_task()
        key = task.cache_key()
        cache.get(key)                   # miss
        cache.put(key, task.run())       # store
        cache.get(key)                   # hit
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:17])
        cache.get(key)                   # corrupt fallback (also a miss)
        assert cache.stats.to_dict() == {"hits": 1, "misses": 2,
                                         "stores": 1, "corrupt": 1}
        assert cache.stats.describe() == ("1 hits, 2 misses, "
                                          "1 stores, 1 corrupt drops")

    def test_run_report_renders_cache_stats(self, tmp_path):
        from repro.harness.report import run_report

        cache = RunCache(tmp_path)
        task = tile_task()
        ex = ExperimentExecutor(jobs=1, cache=cache)
        result = ex.run(task)
        report = run_report(result, cache=cache)
        assert "run cache: 0 hits, 1 misses, 1 stores" in report
        assert "run cache" not in run_report(result)


def _hammer_cache(root, key, blob, rounds, barrier, failures):
    """Child-process body: racing put/get cycles on one cache key."""
    import pickle as _pickle

    from repro.harness.parallel import RunCache as _RunCache

    cache = _RunCache(root)
    result = _pickle.loads(blob)
    barrier.wait()  # maximize overlap between the writers
    for _ in range(rounds):
        cache.put(key, result)
        got = cache.get(key)
        if got is None or got.write_bandwidth != result.write_bandwidth:
            with failures.get_lock():
                failures.value += 1


class TestConcurrentCacheWriters:
    def test_racing_writers_converge_on_one_valid_blob(self, tmp_path):
        """Two processes storing the same key concurrently must never
        corrupt the entry: every interleaved read sees a complete
        result, and exactly one on-disk blob (plus no orphaned temp
        files) remains."""
        import multiprocessing as mp

        task = tile_task()
        key = task.cache_key()
        blob = pickle.dumps(task.run())
        ctx = mp.get_context("fork")
        n_procs, rounds = 2, 25
        barrier = ctx.Barrier(n_procs)
        failures = ctx.Value("i", 0)
        procs = [ctx.Process(target=_hammer_cache,
                             args=(str(tmp_path), key, blob, rounds,
                                   barrier, failures))
                 for _ in range(n_procs)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        assert failures.value == 0
        cache = RunCache(tmp_path)
        final = cache.get(key)
        assert final is not None
        assert final.write_bandwidth == pickle.loads(blob).write_bandwidth
        entries = list(tmp_path.glob("*/*.pkl"))
        assert len(entries) == 1  # both writers converged on one blob
        assert list(tmp_path.rglob("*.tmp")) == []  # no leaked temp files


def _metrics(result):
    return (result.write_bandwidth, result.read_bandwidth,
            result.elapsed_total, result.events, result.messages,
            sorted((k, v["sum"], v["max"])
                   for k, v in result.breakdown.items()),
            [(s.bytes_written, s.bytes_read, s.io_seconds)
             for s in result.per_rank])


class TestExecutor:
    def grid(self):
        tasks = [tile_task(nprocs=p) for p in (4, 8, 16)]
        tasks += [tile_task(nprocs=8, protocol="parcoll",
                            parcoll_ngroups=2)]
        return tasks

    def test_serial_matches_direct(self):
        tasks = self.grid()
        ex = ExperimentExecutor(jobs=1, cache=False)
        for res, task in zip(ex.run_many(tasks), tasks):
            assert _metrics(res) == _metrics(task.run())

    def test_parallel_bit_identical_to_serial(self):
        tasks = self.grid()
        serial = ExperimentExecutor(jobs=1, cache=False).run_many(tasks)
        parallel = ExperimentExecutor(jobs=4, cache=False).run_many(tasks)
        for a, b in zip(serial, parallel):
            assert _metrics(a) == _metrics(b)

    def test_order_stable(self):
        tasks = self.grid()
        results = ExperimentExecutor(jobs=4, cache=False).run_many(tasks)
        assert [r.config.nprocs for r in results] == [4, 8, 16, 8]
        # the parcoll point must carry the parcoll metrics, not slot 1's
        assert _metrics(results[3]) == _metrics(tasks[3].run())
        assert _metrics(results[3]) != _metrics(results[1])

    def test_duplicate_tasks_computed_once(self, tmp_path):
        task = tile_task()
        ex = ExperimentExecutor(jobs=1, cache=RunCache(tmp_path))
        out = ex.run_many([task, task, task])
        assert ex.cache.misses == 1
        assert len({id(r) for r in out}) <= 2  # first + memoized copies
        assert all(_metrics(r) == _metrics(out[0]) for r in out)

    def test_cached_results_identical_serial_vs_parallel(self, tmp_path):
        tasks = self.grid()
        cold = ExperimentExecutor(jobs=4, cache=RunCache(tmp_path))
        warm = ExperimentExecutor(jobs=1, cache=RunCache(tmp_path))
        for a, b in zip(cold.run_many(tasks), warm.run_many(tasks)):
            assert _metrics(a) == _metrics(b)
        assert warm.cache.hits == len(tasks)

    def test_worker_failure_surfaces_original_traceback(self):
        from repro.errors import ConfigError as CErr

        bad = ExperimentTask(
            ExperimentConfig(nprocs=8, lustre=LUSTRE), "tile_io",
            TileIOConfig(tile_rows=32, tile_cols=32, element_size=8,
                         grid=(3, 3)))  # 3x3 grid != 8 procs
        ex = ExperimentExecutor(jobs=4, cache=False)
        with pytest.raises(CErr) as excinfo:
            ex.run_many([bad, tile_task()])
        cause = excinfo.value.__cause__
        assert isinstance(cause, RemoteTraceback)
        assert "resolved_grid" in cause.tb or "grid" in cause.tb

    def test_serial_failure_raises_directly(self):
        bad = ExperimentTask(
            ExperimentConfig(nprocs=8, lustre=LUSTRE), "tile_io",
            TileIOConfig(tile_rows=32, tile_cols=32, element_size=8,
                         grid=(3, 3)))
        with pytest.raises(ConfigError):
            ExperimentExecutor(jobs=1, cache=False).run_many([bad])

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigError):
            ExperimentExecutor(jobs=0)

    def test_from_env_reads_repro_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert ExperimentExecutor.from_env().jobs == 3
        monkeypatch.setenv("REPRO_JOBS", "junk")
        with pytest.raises(ConfigError):
            ExperimentExecutor.from_env()
        monkeypatch.delenv("REPRO_JOBS")
        assert ExperimentExecutor.from_env().jobs == 1

    def test_from_env_cache_toggle(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNCACHE", "0")
        assert ExperimentExecutor.from_env().cache is None
        monkeypatch.setenv("REPRO_RUNCACHE", str(tmp_path / "rc"))
        ex = ExperimentExecutor.from_env()
        assert ex.cache is not None
        assert ex.cache.root == tmp_path / "rc"

    def test_default_cache_dir_is_benchmarks_runcache(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNCACHE", raising=False)
        d = default_cache_dir()
        assert d.parts[-2:] == ("benchmarks", ".runcache")


class TestFigureIntegration:
    """Figure smokes: jobs=N and the cache must not change any metric."""

    def fig(self, **kw):
        from repro.harness.figures import fig07_tileio_groups

        return fig07_tileio_groups(nprocs=16, group_counts=(1, 2, 4),
                                   **kw)

    def test_fig07_parallel_matches_serial(self, tmp_path):
        serial = self.fig(executor=ExperimentExecutor(jobs=1, cache=False))
        parallel = self.fig(
            executor=ExperimentExecutor(jobs=4, cache=RunCache(tmp_path)))
        warm = self.fig(
            executor=ExperimentExecutor(jobs=1, cache=RunCache(tmp_path)))
        assert serial.rows == parallel.rows == warm.rows
        assert serial.series == parallel.series == warm.series

    def test_fig09_parallel_matches_serial(self, tmp_path):
        from repro.harness.figures import fig09_scalability

        kw = dict(procs=(8, 16), groups_for=lambda p: [2, 4])
        serial = fig09_scalability(
            executor=ExperimentExecutor(jobs=1, cache=False), **kw)
        parallel = fig09_scalability(
            executor=ExperimentExecutor(jobs=4, cache=RunCache(tmp_path)),
            **kw)
        assert serial.rows == parallel.rows
        assert serial.series == parallel.series


class TestSweepExecutor:
    def sweep(self, executor=None):
        from repro.harness.sweep import Sweep

        def task(ngroups):
            hints = ({"protocol": "ext2ph"} if ngroups == 1 else
                     {"protocol": "parcoll", "parcoll_ngroups": ngroups})
            return tile_task(nprocs=16, **hints)

        return Sweep("groups", task=task, executor=executor)

    def test_batch_parallel_matches_serial(self, tmp_path):
        values = [1, 2, 4, 8]
        serial = self.sweep(ExperimentExecutor(jobs=1, cache=False))
        parallel = self.sweep(
            ExperimentExecutor(jobs=4, cache=RunCache(tmp_path)))
        s_pts = serial.run(values)
        p_pts = parallel.run(values)
        assert [pt.write_mb_s for pt in s_pts] == \
            [pt.write_mb_s for pt in p_pts]

    def test_memoized_points_not_reevaluated(self, tmp_path):
        ex = ExperimentExecutor(jobs=1, cache=RunCache(tmp_path))
        sweep = self.sweep(ex)
        sweep.run([1, 2])
        misses = ex.cache.misses
        pts = sweep.run([1, 2, 4])
        assert ex.cache.misses == misses + 1  # only value 4 is new
        assert [pt.value for pt in pts] == [1, 2, 4]

    def test_sweep_requires_make_or_task(self):
        from repro.harness.sweep import Sweep

        with pytest.raises(ValueError):
            Sweep("empty")


class TestCLIFlags:
    def test_figure_with_jobs_and_no_cache(self, capsys):
        from repro.cli import main

        assert main(["figure", "5", "-j", "2", "--no-cache"]) == 0
        assert "SubGroup" in capsys.readouterr().out

    def test_cache_subcommand(self, capsys, monkeypatch, tmp_path):
        from repro.cli import main

        monkeypatch.setenv("REPRO_RUNCACHE", str(tmp_path / "rc"))
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "entries:   0" in out
        assert main(["cache", "--clear"]) == 0
        assert "removed 0" in capsys.readouterr().out
