"""Trace-driven timeline analysis."""

import numpy as np
import pytest

from repro.analysis.timeline import (OstLoadSummary, burstiness, ost_load,
                                     utilization_curve)
from repro.cluster import MachineConfig
from repro.lustre import LustreFS, LustreParams
from repro.mpiio import MPIIO
from repro.sim import TraceRecorder
from repro.simmpi import World
from repro.workloads.base import deterministic_bytes


def run_traced(protocol, ngroups=4, nprocs=16):
    world = World(MachineConfig(nprocs=nprocs, cores_per_node=2))
    trace = TraceRecorder()
    fs = LustreFS(world.engine,
                  LustreParams(n_osts=8, default_stripe_count=8,
                               default_stripe_size=4096, jitter=0.2),
                  trace=trace)
    io = MPIIO(world, fs)
    block = 1 << 14

    def program(comm):
        f = yield from io.open(comm, "t", hints={
            "protocol": protocol, "parcoll_ngroups": ngroups,
            "cb_buffer_size": 4096})
        data = deterministic_bytes(comm.rank, block)
        yield from f.write_at_all(comm.rank * block, data)
        yield from f.close()

    world.launch(program)
    return trace, world.engine.now


class TestOstLoad:
    def test_records_collected(self):
        trace, _ = run_traced("ext2ph")
        summary = ost_load(trace)
        assert summary.requests > 0
        assert sum(summary.per_ost_bytes.values()) >= 16 * (1 << 14)

    def test_imbalance_at_least_one(self):
        trace, _ = run_traced("ext2ph")
        summary = ost_load(trace)
        assert summary.imbalance >= 1.0
        assert summary.hottest_ost in summary.per_ost_busy

    def test_empty_trace(self):
        s = ost_load(TraceRecorder())
        assert s.imbalance == 0.0
        assert s.hottest_ost is None
        assert s.requests == 0


class TestUtilizationCurve:
    def test_curve_bounded(self):
        trace, t_end = run_traced("ext2ph")
        edges, curve = utilization_curve(trace, t_end, nbins=20)
        assert edges.size == 21
        assert curve.size == 20
        assert (curve >= 0).all() and (curve <= 1).all()
        assert curve.sum() > 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            utilization_curve(TraceRecorder(), 0.0)
        with pytest.raises(ValueError):
            utilization_curve(TraceRecorder(), 1.0, nbins=0)

    def test_burstiness_nonnegative(self):
        trace, t_end = run_traced("ext2ph")
        assert burstiness(trace, t_end) >= 0.0

    def test_burstiness_zero_for_empty(self):
        assert burstiness(TraceRecorder(), 1.0) == 0.0


class TestSummaryMath:
    def test_imbalance_formula(self):
        s = OstLoadSummary(per_ost_busy={0: 1.0, 1: 3.0},
                           per_ost_bytes={0: 10, 1: 30}, requests=2)
        assert s.imbalance == pytest.approx(1.5)
        assert s.hottest_ost == 1
