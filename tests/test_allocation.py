"""Node-allocation policies and their effect on wire latency."""

import numpy as np
import pytest

from repro.cluster import Machine, MachineConfig, NetworkModel, NetworkParams, Torus3D
from repro.cluster.allocation import allocate, average_pairwise_hops
from repro.errors import ConfigError
from repro.sim import Engine


class TestAllocate:
    def test_linear_identity(self):
        t = Torus3D((4, 4, 4))
        slots = allocate("linear", 10, t)
        np.testing.assert_array_equal(slots, np.arange(10))

    def test_scattered_is_permutation_slice(self):
        t = Torus3D((4, 4, 4))
        slots = allocate("scattered", 20, t, seed=5)
        assert len(set(slots.tolist())) == 20
        assert all(0 <= s < 64 for s in slots)

    def test_scattered_seed_dependent_but_reproducible(self):
        t = Torus3D((4, 4, 4))
        a = allocate("scattered", 16, t, seed=1)
        b = allocate("scattered", 16, t, seed=1)
        c = allocate("scattered", 16, t, seed=2)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_compact_unique_and_valid(self):
        t = Torus3D((6, 6, 6))
        slots = allocate("compact", 27, t)
        assert len(set(slots.tolist())) == 27
        assert all(0 <= s < t.nnodes for s in slots)

    def test_compact_beats_scattered_on_hops(self):
        t = Torus3D((8, 8, 8))
        compact = allocate("compact", 27, t)
        scattered = allocate("scattered", 27, t, seed=3)
        assert (average_pairwise_hops(compact, t)
                < average_pairwise_hops(scattered, t))

    def test_invalid_inputs(self):
        t = Torus3D((2, 2, 2))
        with pytest.raises(ConfigError):
            allocate("linear", 0, t)
        with pytest.raises(ConfigError):
            allocate("linear", 100, t)
        with pytest.raises(ConfigError):
            allocate("best-effort", 4, t)

    def test_average_hops_trivial_cases(self):
        t = Torus3D((4, 4, 4))
        assert average_pairwise_hops(np.array([0]), t) == 0.0


class TestNetworkWithAllocation:
    def make_net(self, slots):
        eng = Engine()
        machine = Machine(MachineConfig(nprocs=8, cores_per_node=1))
        topo = Torus3D((8, 1, 1))
        params = NetworkParams(latency=1e-6, hop_latency=1e-6)
        return NetworkModel(eng, machine, params, topology=topo,
                            node_slots=slots)

    def test_slots_change_latency(self):
        identity = self.make_net(np.arange(8))
        swapped = self.make_net(np.array([0, 4, 2, 3, 1, 5, 6, 7]))
        # nodes 0 and 1: identity = 1 hop; swapped places node 1 at slot 4
        assert identity.wire_latency(0, 1) == pytest.approx(2e-6)
        assert swapped.wire_latency(0, 1) == pytest.approx(5e-6)

    def test_short_slot_table_rejected(self):
        with pytest.raises(ConfigError):
            self.make_net(np.arange(4))

    def test_end_to_end_scattered_slower_than_compact(self):
        from repro.cluster.allocation import allocate
        from repro.simmpi import World

        def barrier_time(policy):
            machine = MachineConfig(nprocs=64, cores_per_node=1)
            topo = Torus3D((16, 16, 16))
            slots = allocate(policy, 64, topo, seed=7)
            world = World(machine,
                          net_params=NetworkParams(hop_latency=2e-6),
                          topology=topo, collective_mode="detailed")
            world.network.node_slots = slots

            def program(comm):
                yield from comm.barrier()
                return comm.now

            return max(world.launch(program))

        assert barrier_time("compact") < barrier_time("scattered")
