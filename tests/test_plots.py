"""Terminal chart rendering."""

import pytest

from repro.harness.figures import FigureResult
from repro.harness.plots import figure_chart, hbar_chart, line_chart


class TestHbar:
    def test_bars_scale_to_max(self):
        text = hbar_chart({"a": 100.0, "b": 50.0}, width=10, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        bar_a = lines[1].split("│")[1]
        bar_b = lines[2].split("│")[1]
        assert bar_a.count("█") == 10
        assert bar_b.count("█") == 5

    def test_empty(self):
        assert hbar_chart({}, title="x") == "x"

    def test_zero_values(self):
        text = hbar_chart({"a": 0.0, "b": 0.0})
        assert "█" not in text

    def test_unit_suffix(self):
        text = hbar_chart({"a": 1234.0}, unit=" MB/s")
        assert "1,234 MB/s" in text


class TestLineChart:
    def test_renders_all_series_markers(self):
        text = line_chart({"one": {1: 10, 2: 20}, "two": {1: 5, 2: 40}},
                          width=20, height=6)
        assert "o one" in text
        assert "x two" in text
        assert "o" in text.splitlines()[1] + "".join(text.splitlines())

    def test_log_x(self):
        text = line_chart({"s": {32: 1.0, 1024: 2.0}}, logx=True, width=20,
                          height=5)
        assert "32" in text and "1024" in text or "1,024" in text

    def test_flat_series_does_not_crash(self):
        text = line_chart({"s": {1: 5.0, 2: 5.0}})
        assert "5" in text

    def test_empty(self):
        assert line_chart({}, title="t") == "t"


class TestFigureChart:
    def make_result(self, series):
        return FigureResult(figure="Figure X", title="t", headers=["a"],
                            rows=[[1]], series=series)

    def test_dict_of_dict_series_plots_lines(self):
        r = self.make_result({"baseline": {32: 1.0, 64: 2.0},
                              "parcoll": {32: 2.0, 64: 5.0}})
        text = figure_chart(r)
        assert "baseline" in text and "parcoll" in text

    def test_flat_series_plots_bars(self):
        r = self.make_result({"A": 10.0, "B": 20.0})
        text = figure_chart(r)
        assert "│" in text

    def test_no_numeric_series_falls_back_to_table(self):
        r = self.make_result({"notes": "hello"})
        assert "Figure X" in figure_chart(r)

    def test_series_filter(self):
        r = self.make_result({"keep": {1: 1.0}, "drop": {1: 2.0}})
        text = figure_chart(r, series_names=["keep"])
        assert "keep" in text and "drop" not in text
