"""Property-based tests for file views: tiling integrity over random types."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import BYTE, Contiguous, Subarray, Vector
from repro.datatypes.flatten import validate_segments
from repro.mpiio import FileView


@st.composite
def view_types(draw):
    kind = draw(st.sampled_from(["contiguous", "vector", "subarray"]))
    if kind == "contiguous":
        return Contiguous(draw(st.integers(1, 64)), BYTE)
    if kind == "vector":
        count = draw(st.integers(1, 12))
        blocklen = draw(st.integers(1, 16))
        stride = draw(st.integers(blocklen, blocklen + 24))
        return Vector(count, blocklen, stride, BYTE)
    rows = draw(st.integers(1, 10))
    cols = draw(st.integers(1, 10))
    sr = draw(st.integers(1, rows))
    sc = draw(st.integers(1, cols))
    r0 = draw(st.integers(0, rows - sr))
    c0 = draw(st.integers(0, cols - sc))
    return Subarray((rows, cols), (sr, sc), (r0, c0), BYTE)


@settings(max_examples=120)
@given(view_types(), st.integers(0, 64), st.data())
def test_segments_cover_exactly_the_requested_bytes(ft, disp, data):
    view = FileView(disp, BYTE, ft)
    span = 4 * ft.size
    lo = data.draw(st.integers(0, span - 1))
    hi = data.draw(st.integers(lo, span))
    offs, lens = view.segments_for(lo, hi)
    validate_segments(offs, lens, allow_adjacent=False)
    assert int(lens.sum()) == hi - lo
    if offs.size:
        assert int(offs[0]) >= disp


@settings(max_examples=80)
@given(view_types(), st.data())
def test_adjacent_ranges_tile_without_overlap(ft, data):
    """Consecutive data ranges map to disjoint physical byte sets whose
    union equals the full range's set."""
    view = FileView(0, BYTE, ft)
    total = 3 * ft.size
    cut = data.draw(st.integers(0, total))
    def cover(lo, hi):
        offs, lens = view.segments_for(lo, hi)
        s = set()
        for o, l in zip(offs.tolist(), lens.tolist()):
            s.update(range(o, o + l))
        return s

    left = cover(0, cut)
    right = cover(cut, total)
    assert left.isdisjoint(right)
    assert left | right == cover(0, total)


@settings(max_examples=80)
@given(view_types(), st.integers(1, 5))
def test_tile_instances_do_not_collide(ft, ntiles):
    """Different tiles of one view address different bytes (positive-extent
    filetypes), in increasing offset order."""
    view = FileView(0, BYTE, ft)
    seen = set()
    for t in range(ntiles):
        offs, lens = view.segments_for(t * ft.size, (t + 1) * ft.size)
        cover = set()
        for o, l in zip(offs.tolist(), lens.tolist()):
            cover.update(range(o, o + l))
        assert seen.isdisjoint(cover)
        seen |= cover


@settings(max_examples=60)
@given(view_types())
def test_data_extent_brackets_segments(ft):
    view = FileView(16, BYTE, ft)
    lo, hi = view.data_extent(0, ft.size)
    offs, lens = view.segments_for(0, ft.size)
    assert lo == int(offs[0])
    assert hi == int(offs[-1] + lens[-1])
