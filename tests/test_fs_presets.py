"""File-system presets and the seek-on-writes behaviour."""

import numpy as np
import pytest

from repro.lustre import LustreFS, LustreParams, preset
from repro.lustre.presets import PRESET_NAMES
from repro.sim import Engine


class TestPresets:
    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_presets_construct(self, name):
        p = preset(name)
        assert p.n_osts > 0
        assert p.default_stripe_count <= p.n_osts

    def test_lustre_xt_matches_paper_testbed(self):
        p = preset("lustre_xt")
        assert p.n_osts == 72
        assert p.default_stripe_count == 64
        assert p.default_stripe_size == 4 << 20
        assert p.lock_revoke_cost > 0

    def test_pvfs_has_no_locks(self):
        p = preset("pvfs_like")
        assert p.lock_grant_cost == 0.0
        assert p.lock_revoke_cost == 0.0
        assert p.seek_on_writes

    def test_gpfs_tokens_cheap_grant_expensive_steal(self):
        p = preset("gpfs_like")
        assert p.lock_grant_cost < preset("lustre_xt").lock_grant_cost
        assert p.lock_revoke_cost > preset("lustre_xt").lock_revoke_cost

    def test_overrides_apply(self):
        p = preset("lustre_xt", store_data=False, n_osts=8,
                   default_stripe_count=8)
        assert not p.store_data
        assert p.n_osts == 8

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            preset("zfs")


class TestSeekOnWrites:
    def run_interleaved_writes(self, seek_on_writes):
        eng = Engine()
        fs = LustreFS(eng, LustreParams(
            n_osts=1, default_stripe_count=1, default_stripe_size=1 << 20,
            jitter=0.0, client_overhead=0.0, mds_op_cost=0.0,
            ost_seek_cost=10e-3, seek_on_writes=seek_on_writes,
            lock_grant_cost=0.0, lock_revoke_cost=0.0))

        def prog():
            f = yield from fs.open("s")
            # two clients ping-pong non-sequential writes
            for i in range(4):
                client = i % 2
                offset = (3 - i) * 1000  # descending: never sequential
                yield from fs.write(f, client, [offset], [100],
                                    data=np.zeros(100, np.uint8))
            return eng.now

        (t,) = eng.run_tasks([prog()])
        return t

    def test_writes_seek_free_by_default(self):
        t_off = self.run_interleaved_writes(False)
        t_on = self.run_interleaved_writes(True)
        assert t_on > t_off + 3 * 10e-3  # ~one seek per non-sequential write

    def test_reads_always_pay_seeks(self):
        eng = Engine()
        fs = LustreFS(eng, LustreParams(
            n_osts=1, default_stripe_count=1, default_stripe_size=1 << 20,
            jitter=0.0, client_overhead=0.0, mds_op_cost=0.0,
            ost_seek_cost=10e-3, lock_grant_cost=0.0, lock_revoke_cost=0.0))

        def prog():
            f = yield from fs.open("r")
            yield from fs.write(f, 0, [0], [4000],
                                data=np.zeros(4000, np.uint8))
            t0 = eng.now
            yield from fs.read(f, 0, [3000], [100])  # non-sequential
            first = eng.now - t0
            t0 = eng.now
            yield from fs.read(f, 0, [3100], [100])  # sequential follow-on
            second = eng.now - t0
            return first, second

        ((first, second),) = eng.run_tasks([prog()])
        assert first > second + 5e-3
