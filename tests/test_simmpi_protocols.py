"""Transport protocol internals: eager/rendezvous boundary, NIC accounting,
mailbox behaviour, request states."""

import pytest

from repro.cluster import MachineConfig, NetworkParams
from repro.simmpi import Payload, World
from repro.simmpi.p2p import Mailbox, Message, PostedRecv, RTS_BYTES


def make_world(threshold, nprocs=4):
    return World(MachineConfig(nprocs=nprocs, cores_per_node=1),
                 net_params=NetworkParams(eager_threshold=threshold))


class TestEagerRendezvousBoundary:
    def run_send(self, nbytes, threshold):
        w = make_world(threshold)
        out = {}

        def program(comm):
            if comm.rank == 0:
                t0 = comm.now
                yield from comm.send(Payload.model(nbytes), dest=1)
                out["send_done"] = comm.now - t0
            elif comm.rank == 1:
                yield from comm.proc.compute(1.0)  # receiver late
                yield from comm.recv(source=0)

        w.launch(program)
        return w, out

    def test_at_threshold_is_eager(self):
        _, out = self.run_send(nbytes=1024, threshold=1024)
        assert out["send_done"] < 0.5  # did not wait for the receiver

    def test_above_threshold_is_rendezvous(self):
        _, out = self.run_send(nbytes=1025, threshold=1024)
        assert out["send_done"] >= 1.0  # waited for the late receiver

    def test_rendezvous_header_bytes_on_wire(self):
        w, _ = self.run_send(nbytes=10_000, threshold=1024)
        # RTS header + payload both crossed the network
        assert w.network.bytes_sent == RTS_BYTES + 10_000

    def test_eager_counts_payload_once(self):
        w, _ = self.run_send(nbytes=100, threshold=1024)
        assert w.network.bytes_sent == 100


class TestRequestStates:
    def test_isend_request_completes(self):
        w = make_world(1 << 20, nprocs=2)
        states = {}

        def program(comm):
            if comm.rank == 0:
                req = comm.isend("x", dest=1)
                states["before"] = req.complete
                yield from req.wait()
                states["after"] = req.complete
            else:
                yield from comm.recv(source=0)

        w.launch(program)
        assert states["after"] is True

    def test_waitall_returns_in_request_order(self):
        w = make_world(1 << 20, nprocs=3)
        got = {}

        def program(comm):
            if comm.rank == 0:
                r2 = comm.irecv(source=2)
                r1 = comm.irecv(source=1)
                vals = yield from comm.waitall([r2, r1])
                got["vals"] = [payload.data for payload, _ in vals]
            else:
                yield from comm.proc.compute(0.1 * comm.rank)
                yield from comm.send(f"from{comm.rank}", dest=0)

        w.launch(program)
        assert got["vals"] == ["from2", "from1"]


class TestMailbox:
    def msg(self, ctx=0, src=1, tag=5):
        return Message(ctx, src, 0, tag, Payload.model(4), False, None, 1)

    def pr(self, ctx=0, src=1, tag=5, seq=1):
        from repro.sim import Engine, Event

        return PostedRecv(ctx, src, tag, Event(Engine(), "e"), seq)

    def test_match_posted_in_post_order(self):
        mb = Mailbox()
        a, b = self.pr(tag=-1, seq=1), self.pr(tag=5, seq=2)  # ANY_TAG first
        mb.add_posted(a)
        mb.add_posted(b)
        matched = mb.match_posted(self.msg(tag=5))
        assert matched is a  # first posted wins

    def test_match_posted_exact_before_later_wildcard(self):
        mb = Mailbox()
        a, b = self.pr(tag=5, seq=1), self.pr(tag=-1, seq=2)  # exact first
        mb.add_posted(a)
        mb.add_posted(b)
        matched = mb.match_posted(self.msg(tag=5))
        assert matched is a

    def test_context_isolation(self):
        mb = Mailbox()
        mb.add_posted(self.pr(ctx=1))
        assert mb.match_posted(self.msg(ctx=0)) is None

    def test_unexpected_in_arrival_order(self):
        mb = Mailbox()
        m1, m2 = self.msg(tag=7), self.msg(tag=7)
        mb.add_unexpected(m1)
        mb.add_unexpected(m2)
        got = mb.match_unexpected(self.pr(tag=7))
        assert got is m1

    def test_unexpected_wildcard_crosses_buckets_in_arrival_order(self):
        mb = Mailbox()
        m1, m2 = self.msg(src=2, tag=9), self.msg(src=1, tag=7)
        mb.add_unexpected(m1)
        mb.add_unexpected(m2)
        got = mb.match_unexpected(self.pr(src=-1, tag=-1))
        assert got is m1

    def test_describe(self):
        mb = Mailbox()
        mb.add_posted(self.pr())
        assert "1 posted" in mb.describe()


class TestNicAccounting:
    def test_incast_to_one_receiver_serializes(self):
        """Many senders to one rank: the receiver NIC paces arrivals."""
        w = World(MachineConfig(nprocs=5, cores_per_node=1),
                  net_params=NetworkParams(bandwidth=1e6, latency=0.0,
                                           send_overhead=0.0,
                                           recv_overhead=0.0,
                                           eager_threshold=1 << 30))
        arrive = {}

        def program(comm):
            if comm.rank == 0:
                for i in range(4):
                    payload = yield from comm.recv()
                    arrive[i] = comm.now
            else:
                yield from comm.send(Payload.model(1_000_000), dest=0)

        w.launch(program)
        times = sorted(arrive.values())
        # 1 MB at 1 MB/s each, serialized at the receiver: ~1s apart
        for i in range(1, 4):
            assert times[i] - times[i - 1] >= 0.9
