"""Point-to-point semantics: matching, wildcards, ordering, protocols."""

import numpy as np
import pytest

from repro.cluster import MachineConfig, NetworkParams
from repro.errors import DeadlockError, MPIError
from repro.simmpi import ANY_SOURCE, ANY_TAG, Payload, World


def make_world(nprocs=4, **net_kw):
    return World(MachineConfig(nprocs=nprocs, cores_per_node=2),
                 net_params=NetworkParams(**net_kw))


def test_simple_send_recv():
    w = make_world()
    out = {}

    def program(comm):
        if comm.rank == 0:
            yield from comm.send({"x": 1}, dest=1, tag=7)
        elif comm.rank == 1:
            payload = yield from comm.recv(source=0, tag=7)
            out["data"] = payload.data
        else:
            return

    w.launch(program)
    assert out["data"] == {"x": 1}


def test_send_recv_numpy_array():
    w = make_world()
    out = {}

    def program(comm):
        if comm.rank == 0:
            arr = np.arange(100, dtype=np.int64)
            yield from comm.send(arr, dest=3)
        elif comm.rank == 3:
            payload = yield from comm.recv(source=0)
            out["arr"] = payload.data

    w.launch(program)
    np.testing.assert_array_equal(out["arr"], np.arange(100))


def test_any_source_any_tag():
    w = make_world()
    seen = []

    def program(comm):
        if comm.rank in (1, 2, 3):
            yield from comm.send(comm.rank, dest=0, tag=comm.rank * 10)
        else:
            for _ in range(3):
                payload, status = yield from comm.recv_status(ANY_SOURCE, ANY_TAG)
                seen.append((status.source, status.tag, payload.data))

    w.launch(program)
    assert sorted(seen) == [(1, 10, 1), (2, 20, 2), (3, 30, 3)]


def test_tag_selectivity():
    w = make_world(nprocs=2)
    order = []

    def program(comm):
        if comm.rank == 0:
            yield from comm.send("a", dest=1, tag=1)
            yield from comm.send("b", dest=1, tag=2)
        else:
            p2 = yield from comm.recv(source=0, tag=2)
            order.append(p2.data)
            p1 = yield from comm.recv(source=0, tag=1)
            order.append(p1.data)

    w.launch(program)
    assert order == ["b", "a"]


def test_fifo_order_same_src_same_tag():
    w = make_world(nprocs=2)
    got = []

    def program(comm):
        if comm.rank == 0:
            for i in range(5):
                yield from comm.send(i, dest=1, tag=0)
        else:
            for _ in range(5):
                p = yield from comm.recv(source=0, tag=0)
                got.append(p.data)

    w.launch(program)
    assert got == [0, 1, 2, 3, 4]


def test_unmatched_recv_deadlocks_with_diagnostic():
    w = make_world(nprocs=2)

    def program(comm):
        if comm.rank == 1:
            yield from comm.recv(source=0, tag=99)

    with pytest.raises(DeadlockError):
        w.launch(program)


def test_rendezvous_sender_blocks_until_receiver_posts():
    # 1 MB >> eager threshold: sender should not complete before the
    # receiver shows up at t=5.
    w = make_world(nprocs=4, eager_threshold=1024)
    times = {}

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(Payload.model(1_000_000), dest=2)
            times["send_done"] = comm.now
        elif comm.rank == 2:
            yield from comm.proc.compute(5.0)
            yield from comm.recv(source=0)
            times["recv_done"] = comm.now

    w.launch(program)
    assert times["send_done"] > 5.0
    assert times["recv_done"] >= times["send_done"]


def test_eager_sender_completes_before_receiver_posts():
    w = make_world(nprocs=4, eager_threshold=1 << 20)
    times = {}

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(Payload.model(1000), dest=2)
            times["send_done"] = comm.now
        elif comm.rank == 2:
            yield from comm.proc.compute(5.0)
            payload = yield from comm.recv(source=0)
            times["recv_done"] = comm.now
            times["nbytes"] = payload.nbytes

    w.launch(program)
    assert times["send_done"] < 1.0
    assert times["recv_done"] == pytest.approx(5.0, rel=1e-6)
    assert times["nbytes"] == 1000


def test_isend_waitall():
    w = make_world(nprocs=4)
    got = []

    def program(comm):
        if comm.rank == 0:
            reqs = [comm.isend(i, dest=i, tag=0) for i in range(1, 4)]
            yield from comm.waitall(reqs)
        else:
            p = yield from comm.recv(source=0)
            got.append(p.data)

    w.launch(program)
    assert sorted(got) == [1, 2, 3]


def test_send_to_invalid_rank_raises():
    w = make_world(nprocs=2)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, dest=5)

    with pytest.raises(MPIError):
        w.launch(program)


def test_model_payload_moves_no_data():
    w = make_world(nprocs=2)
    out = {}

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(Payload.model(10_000), dest=1)
        else:
            p = yield from comm.recv(source=0)
            out["p"] = p

    w.launch(program)
    assert out["p"].is_model
    assert out["p"].nbytes == 10_000
    assert out["p"].data is None


def test_exchange_time_accounting():
    # ranks 0 and 2 sit on different nodes, so the wire latency applies
    w = make_world(nprocs=4, latency=1e-3, bandwidth=1e6)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(Payload.model(1000), dest=2, category="exchange")
        elif comm.rank == 2:
            yield from comm.recv(source=0, category="exchange")

    w.launch(program)
    # receiver waited for latency + transfer: must be accounted
    assert w.procs[2].breakdown.get("exchange") > 1e-3


def test_self_send_with_isend():
    w = make_world(nprocs=2)
    out = {}

    def program(comm):
        if comm.rank == 0:
            req = comm.isend("self", dest=0, tag=3)
            p = yield from comm.recv(source=0, tag=3)
            yield from req.wait()
            out["v"] = p.data
        else:
            return
            yield  # pragma: no cover

    w.launch(program)
    assert out["v"] == "self"
