"""Hot-path equivalence and determinism regression tests.

Two families:

1. Property-style checks that the vectorized two-phase helpers
   (:func:`plan_rounds` + :func:`_send_lists_from_plan`,
   :func:`extract_data` / :func:`place_data`, :func:`merge_pieces`)
   agree with the retained per-round / slice-loop reference
   implementations on seeded random fragmented access patterns —
   including empty ranks, single-byte segments and segments straddling
   collective-buffer window boundaries.

2. A determinism regression test asserting the smoke-scale hot-path
   configs still reproduce the virtual-time results recorded in
   ``benchmarks/ref_hotpath.json`` before the engine optimizations
   landed: bit-identical bandwidths, elapsed times, effect/message
   counts and verified file hashes.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.datatypes.flatten import intersect_range
from repro.harness.hotpath import CONFIGS, run_config
from repro.mpiio.two_phase import (_extract_data_reference,
                                   _merge_reorder_reference,
                                   _place_data_reference, _prefix_of,
                                   _send_lists_for_round,
                                   _send_lists_from_plan, data_positions,
                                   extract_data, merge_pieces, place_data,
                                   plan_rounds)

REF = (pathlib.Path(__file__).resolve().parents[1]
       / "benchmarks" / "ref_hotpath.json")


def random_segments(rng: np.random.Generator, nsegs: int,
                    max_len: int, lo: int = 0) -> tuple:
    """Sorted, non-overlapping segments with random gaps.

    ``max_len=1`` degenerates to single-byte segments; gaps of zero make
    adjacent (coalescible) segments common.
    """
    if nsegs == 0:
        return (np.empty(0, np.int64), np.empty(0, np.int64))
    lens = rng.integers(1, max_len + 1, size=nsegs).astype(np.int64)
    gaps = rng.integers(0, 64, size=nsegs).astype(np.int64)
    offs = lo + np.cumsum(gaps + lens) - lens
    return offs, lens


def random_domains(rng: np.random.Generator, naggs: int,
                   span_hi: int) -> tuple:
    """Contiguous aggregator file domains covering ``[0, span_hi)``.

    Some domains come out empty (``starts[a] == ends[a]``), matching
    what :func:`partition_file_domains` produces when there are more
    aggregators than aligned stripes.
    """
    cuts = np.sort(rng.integers(0, span_hi + 1, size=naggs - 1))
    bounds = np.concatenate(([0], cuts, [span_hi])).astype(np.int64)
    return bounds[:-1], bounds[1:]


PATTERNS = [
    # (seed, nsegs, max_len, naggs, cb) — cb small vs segment extents so
    # plenty of segments straddle round-window boundaries
    (0, 40, 1, 4, 128),        # single-byte segments
    (1, 200, 17, 8, 256),      # many tiny fragments
    (2, 12, 4096, 3, 512),     # large segments straddling many windows
    (3, 1, 9000, 5, 1024),     # one huge segment across all domains
    (4, 64, 300, 16, 300),     # window size commensurate with lengths
    (5, 0, 1, 4, 128),         # empty rank
]


@pytest.mark.parametrize("seed,nsegs,max_len,naggs,cb", PATTERNS)
def test_plan_rounds_matches_per_round_reference(seed, nsegs, max_len,
                                                 naggs, cb):
    rng = np.random.default_rng(seed)
    segs = random_segments(rng, nsegs, max_len)
    span_hi = int(segs[0][-1] + segs[1][-1]) + 17 if nsegs else 1024
    starts, ends = random_domains(rng, naggs, span_hi)
    aggs = list(range(naggs))

    plan = plan_rounds(segs, aggs, starts, ends, cb)
    nrounds = int(max((int(e - s) + cb - 1) // cb
                      for s, e in zip(starts, ends)))
    # one extra round past the last: both sides must agree it is empty
    for rnd in range(nrounds + 1):
        ref = _send_lists_for_round(segs, aggs, starts, ends, rnd, cb)
        fast = _send_lists_from_plan(plan, rnd)
        assert set(fast) == set(ref)
        for a in ref:
            np.testing.assert_array_equal(fast[a][0], ref[a][0])
            np.testing.assert_array_equal(fast[a][1], ref[a][1])


def test_plan_rounds_empty_rank_is_empty_plan():
    segs = (np.empty(0, np.int64), np.empty(0, np.int64))
    starts = np.array([0, 512], dtype=np.int64)
    ends = np.array([512, 1024], dtype=np.int64)
    assert plan_rounds(segs, [0, 1], starts, ends, 128) == []
    assert _send_lists_from_plan([], 0) == {}


# force each copy-path branch: many tiny segments take the fancy-index
# gather, few/large ones take the slice loop — both must match the
# reference regardless of which branch fires
COPY_PATTERNS = [
    (10, 64, 8),       # vectorized: n >= 8, avg well under 512
    (11, 500, 1),      # vectorized, single-byte
    (12, 4, 100),      # slice loop: too few segments
    (13, 16, 4096),    # slice loop: avg too large
]


@pytest.mark.parametrize("seed,nsegs,max_len", COPY_PATTERNS)
def test_extract_place_match_reference(seed, nsegs, max_len):
    rng = np.random.default_rng(seed)
    segs = random_segments(rng, nsegs, max_len)
    offs, lens = segs
    total = int(lens.sum())
    prefix = _prefix_of(lens)
    data = rng.integers(0, 256, size=total, dtype=np.uint8)

    # a window clipping roughly the middle half, so some boundary
    # segments are split sub-segments of their parents
    lo = int(offs[0] + (offs[-1] - offs[0]) // 4)
    hi = int(offs[-1] + lens[-1] - (offs[-1] - offs[0]) // 4)
    for w_lo, w_hi in [(lo, hi), (int(offs[0]), int(offs[-1] + lens[-1]))]:
        sub = intersect_range(segs, w_lo, w_hi)
        got = extract_data(segs, prefix, data, sub)
        starts = data_positions(offs, prefix, sub[0])
        want = (_extract_data_reference(starts, sub[1], data)
                if sub[0].size else np.empty(0, np.uint8))
        np.testing.assert_array_equal(got, want)

        out_fast = np.zeros(total, dtype=np.uint8)
        out_ref = np.zeros(total, dtype=np.uint8)
        place_data(segs, prefix, out_fast, sub, got)
        if sub[0].size:
            _place_data_reference(starts, sub[1], out_ref, want)
        np.testing.assert_array_equal(out_fast, out_ref)

        # round trip: place(extract(x)) restores the window's bytes
        mask = np.zeros(total, dtype=bool)
        if sub[0].size:
            for s, l in zip(starts.tolist(), sub[1].tolist()):
                mask[s:s + l] = True
        np.testing.assert_array_equal(out_fast[mask], data[mask])


@pytest.mark.parametrize("seed,npieces,nsegs,max_len", [
    (20, 5, 30, 4),       # many tiny segments -> gather path
    (21, 3, 2, 2000),     # few large segments -> slice-loop path
    (22, 4, 1, 1),        # single-byte pieces
])
def test_merge_pieces_matches_reference(seed, npieces, nsegs, max_len):
    rng = np.random.default_rng(seed)
    # carve disjoint per-piece offset bands so pieces interleave by
    # offset but never overlap
    pieces = []
    sparse: dict[int, int] = {}
    for p in range(npieces):
        offs, lens = random_segments(rng, nsegs, max_len,
                                     lo=p * 1_000_000)
        total = int(lens.sum())
        data = rng.integers(0, 256, size=total, dtype=np.uint8)
        pieces.append(((offs, lens), data))
        pos = 0
        for o, l in zip(offs.tolist(), lens.tolist()):
            for k in range(l):
                sparse[o + k] = int(data[pos + k])
            pos += l
    rng.shuffle(pieces)

    (w_offs, w_lens), merged = merge_pieces(pieces, verified=True)
    # independent oracle: replay every byte through a sparse map
    expect = []
    for o, l in zip(w_offs.tolist(), w_lens.tolist()):
        expect.extend(sparse[o + k] for k in range(l))
    np.testing.assert_array_equal(merged,
                                  np.array(expect, dtype=np.uint8))

    # and the retained reference reorder agrees with whichever branch ran
    all_offs = np.concatenate([p[0][0] for p in pieces])
    all_lens = np.concatenate([p[0][1] for p in pieces])
    order = np.argsort(all_offs, kind="stable")
    cat = np.concatenate([p[1] for p in pieces])
    ref = _merge_reorder_reference(cat, _prefix_of(all_lens)[order],
                                   all_lens[order])
    np.testing.assert_array_equal(merged, ref)


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_hotpath_configs_reproduce_pre_optimization_results(name):
    """Every virtual-time metric must match the recorded pre-PR values."""
    ref = json.loads(REF.read_text())["configs"][name + "_smoke"]
    got = run_config(name, smoke=True)
    for field, want in ref.items():
        if field == "baseline_wall_s":
            continue
        assert got[field] == want, (
            f"{name}: {field} diverged from the pre-optimization "
            f"reference ({got[field]!r} != {want!r})")
