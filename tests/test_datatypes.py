"""Unit tests for derived datatypes and their flattened forms."""

import numpy as np
import pytest

from repro.datatypes import (BYTE, DOUBLE, INT, Contiguous, HIndexed, HVector,
                             Indexed, Resized, Struct, Subarray, Vector,
                             coalesce)
from repro.datatypes.flatten import intersect_range, replicate, total_bytes
from repro.errors import DatatypeError


def segs(dtype):
    o, l = dtype.segments()
    return list(zip(o.tolist(), l.tolist()))


class TestPrimitives:
    def test_sizes(self):
        assert BYTE.size == 1
        assert INT.size == 4
        assert DOUBLE.size == 8

    def test_segments(self):
        assert segs(DOUBLE) == [(0, 8)]

    def test_is_contiguous(self):
        assert DOUBLE.is_contiguous


class TestContiguous:
    def test_merges_to_one_run(self):
        t = Contiguous(10, INT)
        assert t.size == 40
        assert t.extent == 40
        assert segs(t) == [(0, 40)]
        assert t.is_contiguous

    def test_zero_count(self):
        t = Contiguous(0, INT)
        assert t.size == 0
        assert segs(t) == []

    def test_nested(self):
        t = Contiguous(3, Contiguous(2, DOUBLE))
        assert t.size == 48
        assert segs(t) == [(0, 48)]

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            Contiguous(-1, INT)


class TestVector:
    def test_strided_blocks(self):
        # 3 blocks of 2 ints, stride 4 ints
        t = Vector(3, 2, 4, INT)
        assert t.size == 24
        assert segs(t) == [(0, 8), (16, 8), (32, 8)]
        assert t.extent == (2 * 4 + 2) * 4

    def test_stride_equal_blocklength_is_contiguous(self):
        t = Vector(4, 2, 2, INT)
        assert segs(t) == [(0, 32)]

    def test_single_count(self):
        t = Vector(1, 5, 100, INT)
        assert segs(t) == [(0, 20)]
        assert t.extent == 20

    def test_hvector_byte_stride(self):
        t = HVector(3, 1, 10, INT)
        assert segs(t) == [(0, 4), (10, 4), (20, 4)]
        assert t.extent == 24


class TestIndexed:
    def test_basic(self):
        t = Indexed([2, 1], [0, 5], INT)
        assert t.size == 12
        assert segs(t) == [(0, 8), (20, 4)]

    def test_unsorted_displacements_are_sorted_in_segments(self):
        t = Indexed([1, 1], [5, 0], INT)
        assert segs(t) == [(0, 4), (20, 4)]

    def test_adjacent_blocks_merge(self):
        t = Indexed([2, 2], [0, 2], INT)
        assert segs(t) == [(0, 16)]

    def test_length_mismatch_rejected(self):
        with pytest.raises(DatatypeError):
            Indexed([1, 2], [0], INT)

    def test_hindexed_byte_displacements(self):
        t = HIndexed([1, 1], [0, 100], DOUBLE)
        assert segs(t) == [(0, 8), (100, 8)]
        assert t.extent == 108


class TestStruct:
    def test_mixed_types(self):
        t = Struct([1, 2], [0, 8], [INT, DOUBLE])
        assert t.size == 4 + 16
        assert segs(t) == [(0, 4), (8, 16)]
        assert t.extent == 24

    def test_length_mismatch(self):
        with pytest.raises(DatatypeError):
            Struct([1], [0, 8], [INT])


class TestSubarray:
    def test_2d_tile(self):
        # 4x6 global array of bytes, 2x3 tile at (1, 2)
        t = Subarray((4, 6), (2, 3), (1, 2), BYTE)
        assert t.size == 6
        assert t.extent == 24  # full array
        assert segs(t) == [(8, 3), (14, 3)]

    def test_full_array_is_contiguous(self):
        t = Subarray((4, 6), (4, 6), (0, 0), BYTE)
        assert segs(t) == [(0, 24)]

    def test_rows_merge_when_tile_spans_width(self):
        t = Subarray((4, 6), (2, 6), (1, 0), BYTE)
        assert segs(t) == [(6, 12)]

    def test_3d(self):
        t = Subarray((2, 3, 4), (1, 2, 2), (1, 1, 1), BYTE)
        # element offsets: z=1 plane (offset 12), rows y=1,2 starting x=1
        assert segs(t) == [(17, 2), (21, 2)]

    def test_fortran_order(self):
        # 4x6 (rows x cols) in F order: columns contiguous
        t = Subarray((6, 4), (3, 2), (2, 1), BYTE, order="F")
        # F-order: axis 0 fastest; column j=1 and j=2, rows 2..4
        assert t.size == 6
        o, l = t.segments()
        assert l.sum() == 6

    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(42)
        shape, subsizes, starts = (5, 7, 3), (2, 4, 2), (1, 2, 0)
        t = Subarray(shape, subsizes, starts, BYTE)
        buf = rng.integers(0, 256, size=np.prod(shape), dtype=np.uint8)
        arr = buf.reshape(shape)
        expected = arr[1:3, 2:6, 0:2].ravel()
        from repro.datatypes import gather_segments

        o, l = t.segments()
        np.testing.assert_array_equal(gather_segments(buf, o, l), expected)

    def test_invalid_bounds(self):
        with pytest.raises(DatatypeError):
            Subarray((4,), (3,), (2,), BYTE)  # 2+3 > 4
        with pytest.raises(DatatypeError):
            Subarray((4, 4), (2,), (0,), BYTE)
        with pytest.raises(DatatypeError):
            Subarray((4,), (2,), (0,), BYTE, order="X")


class TestResized:
    def test_extent_override(self):
        t = Resized(Contiguous(2, INT), lb=0, extent=32)
        assert t.size == 8
        assert t.extent == 32
        assert segs(t) == [(0, 8)]

    def test_negative_extent_rejected(self):
        with pytest.raises(DatatypeError):
            Resized(INT, 0, -1)


class TestFlattenHelpers:
    def test_coalesce_merges_adjacent(self):
        o, l = coalesce([0, 4, 10], [4, 4, 2])
        assert o.tolist() == [0, 10]
        assert l.tolist() == [8, 2]

    def test_coalesce_merges_overlapping(self):
        o, l = coalesce([0, 2], [4, 4])
        assert o.tolist() == [0]
        assert l.tolist() == [6]

    def test_coalesce_drops_zero_length(self):
        o, l = coalesce([0, 5, 9], [2, 0, 1])
        assert o.tolist() == [0, 9]
        assert l.tolist() == [2, 1]

    def test_coalesce_contained_segment(self):
        o, l = coalesce([0, 2], [10, 3])
        assert o.tolist() == [0]
        assert l.tolist() == [10]

    def test_replicate(self):
        base = (np.array([0], dtype=np.int64), np.array([2], dtype=np.int64))
        o, l = replicate(base, [0, 10, 20])
        assert o.tolist() == [0, 10, 20]
        assert l.tolist() == [2, 2, 2]

    def test_intersect_range(self):
        segments = (np.array([0, 10, 20], dtype=np.int64),
                    np.array([5, 5, 5], dtype=np.int64))
        o, l = intersect_range(segments, 3, 22)
        assert o.tolist() == [3, 10, 20]
        assert l.tolist() == [2, 5, 2]

    def test_intersect_range_empty(self):
        segments = (np.array([0], dtype=np.int64), np.array([5], dtype=np.int64))
        o, l = intersect_range(segments, 100, 200)
        assert o.size == 0

    def test_total_bytes(self):
        t = Vector(3, 2, 4, INT)
        assert total_bytes(t.segments()) == t.size


class TestPacking:
    def test_gather_scatter_roundtrip_slices(self):
        buf = np.arange(100, dtype=np.uint8)
        offs = np.array([10, 50], dtype=np.int64)
        lens = np.array([20, 30], dtype=np.int64)
        from repro.datatypes import gather_segments, scatter_segments

        packed = gather_segments(buf, offs, lens)
        assert packed.size == 50
        out = np.zeros(100, dtype=np.uint8)
        scatter_segments(out, offs, lens, packed)
        np.testing.assert_array_equal(out[10:30], buf[10:30])
        np.testing.assert_array_equal(out[50:80], buf[50:80])
        assert out[0:10].sum() == 0

    def test_gather_fancy_path_many_small_segments(self):
        from repro.datatypes import gather_segments

        buf = np.arange(256, dtype=np.uint8)
        offs = np.arange(0, 256, 8, dtype=np.int64)
        lens = np.full(32, 2, dtype=np.int64)
        packed = gather_segments(buf, offs, lens)
        expected = np.concatenate([buf[o:o + 2] for o in offs])
        np.testing.assert_array_equal(packed, expected)

    def test_scatter_size_mismatch_rejected(self):
        from repro.datatypes import scatter_segments

        buf = np.zeros(10, dtype=np.uint8)
        with pytest.raises(DatatypeError):
            scatter_segments(buf, [0], [5], np.zeros(3, dtype=np.uint8))

    def test_out_of_bounds_rejected(self):
        from repro.datatypes import gather_segments

        buf = np.zeros(10, dtype=np.uint8)
        with pytest.raises(DatatypeError):
            gather_segments(buf, [8], [5])
