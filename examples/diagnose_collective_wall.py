#!/usr/bin/env python
"""Diagnose an I/O scaling problem the way the paper's Section 2 does.

Given a workload that scales badly, is it the *collective wall*
(synchronization) or an I/O capacity limit?  This example:

1. calibrates the platform's primitives (like lmbench/IOR micro-runs);
2. sweeps the process count, collecting per-category time breakdowns;
3. prints the Figure-2-style table and an automatic diagnosis;
4. attaches a trace and shows how ParColl flattens the OST load bursts.

Run:  python examples/diagnose_collective_wall.py
"""

from functools import partial

from repro.analysis import (BreakdownSeries, burstiness, calibrate, ost_load,
                            wall_diagnosis)
from repro.cluster import MachineConfig
from repro.harness import ExperimentConfig, format_table, run_experiment
from repro.lustre import LustreFS, LustreParams
from repro.mpiio import MPIIO
from repro.sim import TraceRecorder
from repro.simmpi import World
from repro.workloads import TileIOConfig, tile_io_program
from repro.workloads.base import deterministic_bytes

LUSTRE = {"n_osts": 72, "default_stripe_count": 64}


def step1_calibrate():
    print("== platform calibration ==")
    print(calibrate(proc_counts=(16, 64)).summary())


def step2_sweep():
    print("\n== process-count sweep (tile-IO, ext2ph baseline) ==")
    series = BreakdownSeries()
    rows = []
    for p in (16, 32, 64, 128):
        wl = TileIOConfig(tile_rows=1024, tile_cols=768, element_size=64,
                          hints={"protocol": "ext2ph"})
        res = run_experiment(ExperimentConfig(nprocs=p, lustre=LUSTRE),
                             partial(tile_io_program, wl))
        series.add(p, res)
        bd = series.points[p]
        rows.append([p, round(bd["sync"], 2), round(bd["exchange"], 3),
                     round(bd["io"], 2),
                     round(100 * series.shares[p], 1)])
    print(format_table(["procs", "sync (s)", "p2p (s)", "io (s)", "sync %"],
                       rows))
    print("\ndiagnosis:", wall_diagnosis(series))


def step3_trace(protocol, ngroups):
    world = World(MachineConfig(nprocs=32, cores_per_node=2))
    trace = TraceRecorder()
    fs = LustreFS(world.engine,
                  LustreParams(n_osts=16, default_stripe_count=16,
                               default_stripe_size=1 << 16, jitter=0.2),
                  trace=trace)
    io = MPIIO(world, fs)
    block = 1 << 20

    def program(comm):
        f = yield from io.open(comm, "trace", hints={
            "protocol": protocol, "parcoll_ngroups": ngroups,
            "cb_buffer_size": 1 << 16})
        yield from f.write_at_all(comm.rank * block,
                                  deterministic_bytes(comm.rank, block))
        yield from f.close()

    world.launch(program)
    return trace, world.engine.now


def main():
    step1_calibrate()
    step2_sweep()

    print("\n== OST load: global rounds vs drifting subgroups ==")
    rows = []
    for name, proto, g in (("ext2ph (global rounds)", "ext2ph", 1),
                           ("ParColl-8", "parcoll", 8)):
        trace, t_end = step3_trace(proto, g)
        load = ost_load(trace)
        busy = sum(load.per_ost_busy.values())
        util = busy / (16 * t_end)
        rows.append([name, round(t_end, 3), round(100 * util, 1),
                     round(load.imbalance, 2), load.requests])
    print(format_table(["variant", "makespan (s)", "mean OST util %",
                        "imbalance", "requests"], rows))
    print("\nsame bytes, same OSTs: decoupled subgroups keep the disks "
          "busier and finish sooner")


# burstiness() is available for time-resolved views; see repro.analysis
_ = burstiness


if __name__ == "__main__":
    main()
