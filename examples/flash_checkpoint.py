#!/usr/bin/env python
"""Flash-style HDF5 checkpointing: why collective I/O matters.

An astrophysics code checkpoints 12 double-precision variables through an
HDF5-like container (one dataset per variable plus block metadata).  This
example writes the checkpoint four ways — independent I/O, the two-phase
baseline, and ParColl with default and reduced aggregator counts — and
prints the Figure-11-style comparison, including the collapse of
uncoordinated output.

Run:  python examples/flash_checkpoint.py
"""

from functools import partial

from repro.harness import ExperimentConfig, format_table, mb_per_s, run_experiment
from repro.workloads import FlashIOConfig, flash_io_program

NPROCS = 64
LUSTRE = {"n_osts": 72, "default_stripe_count": 64}
FLASH = dict(nxb=16, nyb=16, nzb=16, blocks_per_proc=16, nvars=12)


def run_variant(name, hints):
    wl = FlashIOConfig(hints=hints, **FLASH)
    res = run_experiment(ExperimentConfig(nprocs=NPROCS, lustre=LUSTRE),
                         partial(flash_io_program, wl))
    ckpt = wl.checkpoint_bytes(NPROCS)
    return [name, round(mb_per_s(res.write_bandwidth)),
            round(res.breakdown["sync"]["max"], 2),
            round(res.breakdown["io"]["max"], 2)], ckpt


def main():
    rows = []
    variants = [
        ("Cray w/o Coll (independent)", {"protocol": "independent"}),
        ("ext2ph (baseline)", {"protocol": "ext2ph"}),
        ("ParColl-16", {"protocol": "parcoll", "parcoll_ngroups": 16}),
        ("ParColl-16, 4 aggregators",
         {"protocol": "parcoll", "parcoll_ngroups": 16, "cb_nodes": 4}),
    ]
    ckpt = 0
    for name, hints in variants:
        row, ckpt = run_variant(name, hints)
        rows.append(row)
    print(format_table(
        ["variant", "MB/s", "sync max (s)", "io max (s)"], rows,
        title=f"Flash checkpoint: {NPROCS} procs, "
              f"{ckpt / 1e6:.0f} MB across 12 variables"))
    print("\nuncoordinated clients thrash extent locks on the metadata "
          "and data regions;\naggregation through ParColl both shrinks "
          "synchronization and stabilizes lock ownership")


if __name__ == "__main__":
    main()
