#!/usr/bin/env python
"""Quickstart: simulate a Cray-XT-like machine and compare collective I/O.

Builds a 32-process machine over a striped Lustre-like file system, has
every process write its slice of a shared file through three protocols —
independent I/O, the classic extended two-phase protocol, and ParColl —
and prints the bandwidth and time breakdown of each.

Run:  python examples/quickstart.py
"""

from repro.cluster import MachineConfig, NetworkParams
from repro.harness.report import format_table, mb_per_s
from repro.lustre import LustreFS, LustreParams
from repro.mpiio import MPIIO
from repro.simmpi import World
from repro.workloads.base import deterministic_bytes

import numpy as np

NPROCS = 32
BLOCK = 1 << 20  # 1 MiB per process


def build_platform():
    """A fresh simulated machine + file system + MPI-IO stack."""
    world = World(
        MachineConfig(nprocs=NPROCS, cores_per_node=2, mapping="block"),
        net_params=NetworkParams(),
    )
    fs = LustreFS(world.engine,
                  LustreParams(n_osts=16, default_stripe_count=8,
                               default_stripe_size=256 << 10))
    return world, fs, MPIIO(world, fs)


def run_variant(name, hints):
    world, fs, io = build_platform()

    def program(comm):
        f = yield from io.open(comm, "quickstart.dat", hints=hints)
        data = deterministic_bytes(comm.rank, BLOCK)
        t0 = comm.now
        yield from f.write_at_all(comm.rank * BLOCK, data)
        elapsed = comm.now - t0
        yield from f.close()
        return elapsed

    elapsed = max(world.launch(program))
    bw = mb_per_s(NPROCS * BLOCK / elapsed)
    sync = max(p.breakdown.get("sync") for p in world.procs)
    io_t = max(p.breakdown.get("io") for p in world.procs)

    # verify the file really holds every rank's bytes
    contents = fs.lookup("quickstart.dat").contents()
    for r in range(NPROCS):
        got = contents[r * BLOCK:(r + 1) * BLOCK]
        assert np.array_equal(got, deterministic_bytes(r, BLOCK)), name
    return [name, round(bw), round(elapsed, 4), round(sync, 4), round(io_t, 4)]


def main():
    rows = [
        run_variant("independent", {"protocol": "independent"}),
        run_variant("ext2ph (baseline)", {"protocol": "ext2ph"}),
        run_variant("ParColl-4", {"protocol": "parcoll",
                                  "parcoll_ngroups": 4}),
        run_variant("ParColl-8", {"protocol": "parcoll",
                                  "parcoll_ngroups": 8}),
    ]
    print(format_table(
        ["variant", "MB/s", "elapsed (s)", "sync max (s)", "io max (s)"],
        rows,
        title=f"Collective write of {NPROCS} x {BLOCK >> 20} MiB "
              f"(all data verified byte-for-byte)"))


if __name__ == "__main__":
    main()
