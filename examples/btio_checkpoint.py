#!/usr/bin/env python
"""BT-IO style checkpointing: pattern (c) and intermediate file views.

A solver with diagonal multi-partitioning dumps its solution array
periodically.  Each rank's blocks spread across the whole file, so direct
file-area partitioning is impossible — this example shows ParColl
detecting that (the plan switches to an intermediate file view), then
verifies byte-correct output and compares protocols end-to-end with
compute phases between dumps.

Run:  python examples/btio_checkpoint.py
"""

from functools import partial

import numpy as np

from repro.datatypes import gather_segments
from repro.harness import ExperimentConfig, format_table, mb_per_s, run_experiment
from repro.parcoll import plan_partition
from repro.workloads import BTIOConfig, btio_program
from repro.workloads.base import deterministic_bytes
from repro.workloads.btio import bt_filetype

LUSTRE = {"n_osts": 72, "default_stripe_count": 64}


def show_plan():
    """Classify the BT pattern: the plan must use intermediate views."""
    nprocs = 16
    cfg = BTIOConfig(grid_points=16)
    extents = []
    for rank in range(nprocs):
        o, l = bt_filetype(cfg, nprocs, rank).segments()
        extents.append((int(o[0]), int(o[-1] + l[-1]), int(l.sum())))
    plan = plan_partition(extents, ngroups=4)
    print(f"BT-IO pattern on {nprocs} procs: mode={plan.mode!r}, "
          f"{plan.ngroups} groups")
    print(f"logical file areas: {plan.fa_bounds}")
    assert plan.mode == "intermediate"


def verify_bytes():
    """Small verified run: the checkpoint is byte-for-byte correct."""
    from repro.cluster import MachineConfig
    from repro.lustre import LustreFS, LustreParams
    from repro.mpiio import MPIIO
    from repro.simmpi import World

    nprocs = 16
    world = World(MachineConfig(nprocs=nprocs, cores_per_node=2))
    fs = LustreFS(world.engine, LustreParams(n_osts=8, default_stripe_count=8,
                                             default_stripe_size=4096))
    io = MPIIO(world, fs)
    cfg = BTIOConfig(grid_points=16, nsteps=2,
                     hints={"protocol": "parcoll", "parcoll_ngroups": 4})

    def program(comm):
        return (yield from btio_program(cfg, comm, io))

    world.launch(program)
    contents = fs.lookup(cfg.filename).contents()
    per_step = cfg.step_bytes() // nprocs
    for rank in range(nprocs):
        o, l = bt_filetype(cfg, nprocs, rank).segments()
        got = gather_segments(contents, o, l)  # step 0 tile
        np.testing.assert_array_equal(
            got, deterministic_bytes(rank, per_step, salt=0))
    print(f"verified: {nprocs} ranks x {cfg.nsteps} dumps, "
          f"{contents.size} bytes byte-identical to the reference")


def compare_protocols():
    nprocs = 144
    rows = []
    for name, hints in (
        ("ext2ph (baseline)", {"protocol": "ext2ph"}),
        ("ParColl-9", {"protocol": "parcoll", "parcoll_ngroups": 9}),
    ):
        wl = BTIOConfig(grid_points=144, nsteps=8, compute_seconds=0.05,
                        compute_jitter=0.03, hints=hints)
        res = run_experiment(ExperimentConfig(nprocs=nprocs, lustre=LUSTRE),
                             partial(btio_program, wl))
        rows.append([name, round(mb_per_s(res.io_phase_bandwidth)),
                     round(res.breakdown["sync"]["max"], 2)])
    print()
    print(format_table(["variant", "I/O MB/s", "sync max (s)"], rows,
                       title=f"BT-IO, {nprocs} procs, 8 dumps with solver "
                             f"phases between"))


def main():
    show_plan()
    print()
    verify_bytes()
    compare_protocols()


if __name__ == "__main__":
    main()
