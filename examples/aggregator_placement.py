#!/usr/bin/env python
"""Aggregator placement: reproduce the paper's Figure 5 and explore hints.

Shows how ParColl distributes user-specified I/O aggregators over
subgroups under block and cyclic process-to-node mappings (the worked
example of Section 4.2), then demonstrates the ``cb_nodes`` and
``cb_config_ranks`` hints end-to-end on a live run.

Run:  python examples/aggregator_placement.py
"""

from functools import partial

from repro.cluster import Machine, MachineConfig
from repro.harness import ExperimentConfig, format_table, mb_per_s, run_experiment
from repro.parcoll import distribute_aggregators
from repro.workloads import IORConfig, ior_program


def figure5():
    groups = [[0, 1, 2, 3], [4, 5, 6, 7]]
    rows = []
    for mapping, agg_list in (("block", [0, 2, 4, 6]), ("cyclic", [0, 2, 3])):
        machine = Machine(MachineConfig(nprocs=8, cores_per_node=2,
                                        mapping=mapping))
        placed = distribute_aggregators(groups, agg_list, list(range(8)),
                                        machine)
        for gi, aggs in enumerate(placed):
            rows.append([
                mapping,
                ", ".join(f"P{r}" for r in agg_list),
                f"SubGroup {gi + 1}",
                ", ".join(f"N{machine.node_of_rank(a)}(P{a})" for a in aggs),
            ])
    print(format_table(
        ["mapping", "aggregator list", "subgroup", "assigned"], rows,
        title="Figure 5: distribution of I/O aggregators (8 procs, 4 nodes)"))


def live_hints():
    """The same hints driving a real collective write."""
    rows = []
    for name, hints in (
        ("default (one agg per node)", {"protocol": "parcoll",
                                        "parcoll_ngroups": 4}),
        ("cb_nodes=4", {"protocol": "parcoll", "parcoll_ngroups": 4,
                        "cb_nodes": 4}),
        ("explicit ranks 0,8,16,24", {"protocol": "parcoll",
                                      "parcoll_ngroups": 4,
                                      "cb_config_ranks": (0, 8, 16, 24)}),
    ):
        wl = IORConfig(block_size=32 << 20, transfer_size=4 << 20,
                       hints=hints)
        res = run_experiment(
            ExperimentConfig(nprocs=32,
                             lustre={"n_osts": 72,
                                     "default_stripe_count": 64}),
            partial(ior_program, wl))
        rows.append([name, round(mb_per_s(res.write_bandwidth))])
    print()
    print(format_table(["aggregator hint", "IOR write MB/s"], rows,
                       title="Aggregator hints on a 32-process IOR run"))


def main():
    figure5()
    live_hints()


if __name__ == "__main__":
    main()
