#!/usr/bin/env python
"""Visualization output (MPI-Tile-IO scenario): find the best group count.

A parallel renderer writes one tile of a dense 2-D frame per process —
the paper's motivating visualization workload (Figures 7-9).  This
example sweeps the ParColl subgroup count for one frame and prints the
bandwidth curve with its interior optimum, then demonstrates the
autotuner picking a group count without a sweep.

Run:  python examples/tile_visualization.py
"""

from functools import partial

from repro.harness import ExperimentConfig, format_table, mb_per_s, run_experiment
from repro.parcoll.autotune import recommend_groups
from repro.workloads import TileIOConfig, tile_io_program
from repro.workloads.tile_io import tile_filetype

NPROCS = 64
LUSTRE = {"n_osts": 72, "default_stripe_count": 64}


def run_with_groups(ngroups):
    hints = ({"protocol": "ext2ph"} if ngroups == 1
             else {"protocol": "parcoll", "parcoll_ngroups": ngroups})
    wl = TileIOConfig(tile_rows=1024, tile_cols=768, element_size=64,
                      hints=hints)
    cfg = ExperimentConfig(nprocs=NPROCS, lustre=LUSTRE)
    res = run_experiment(cfg, partial(tile_io_program, wl))
    return res


def main():
    rows = []
    best = (None, 0.0)
    for g in (1, 2, 4, 8, 16, 32):
        res = run_with_groups(g)
        bw = mb_per_s(res.write_bandwidth)
        if bw > best[1]:
            best = (g, bw)
        rows.append([g, round(bw), round(res.breakdown["sync"]["max"], 3),
                     round(100 * res.category_share("sync"), 1)])
    print(format_table(
        ["groups", "write MB/s", "sync max (s)", "sync %"], rows,
        title=f"One 3 GB frame from {NPROCS} renderers (48 MB tiles)"))
    print(f"\nswept optimum: {best[0]} groups at {best[1]:.0f} MB/s")

    # what would the autotuner have picked, without any sweep?
    wl = TileIOConfig(tile_rows=1024, tile_cols=768, element_size=64)
    extents = []
    for rank in range(NPROCS):
        o, l = tile_filetype(wl, NPROCS, rank).segments()
        extents.append((int(o[0]), int(o[-1] + l[-1]), int(l.sum())))
    g = recommend_groups(extents, nprocs=NPROCS, n_osts=72)
    print(f"autotuner recommendation: {g} groups")


if __name__ == "__main__":
    main()
