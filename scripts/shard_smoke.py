"""Quick bit-identity probe: sharded vs unsharded on one config.

Usage: PYTHONPATH=src python scripts/shard_smoke.py [shards]
"""

import functools
import sys
from dataclasses import fields

from repro.harness.runner import ExperimentConfig, run_experiment
from repro.workloads import TileIOConfig, tile_io_program


def run(shards):
    cfg = ExperimentConfig(
        nprocs=16, cores_per_node=2,
        collective_mode="scoped:world=analytic,default=macro",
        shards=shards)
    wl = TileIOConfig(tile_rows=64, tile_cols=48, element_size=64,
                      mode="both",
                      hints={"protocol": "parcoll", "parcoll_ngroups": 4})
    return run_experiment(cfg, functools.partial(tile_io_program, wl))


def main():
    shards = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    base = run(1)
    test = run(shards)
    bad = 0
    for r, (a, b) in enumerate(zip(base.per_rank, test.per_rank)):
        for f in fields(a):
            va, vb = getattr(a, f.name), getattr(b, f.name)
            if va != vb:
                bad += 1
                print(f"rank {r} {f.name}: {va!r} != {vb!r}")
    if base.breakdown != test.breakdown:
        bad += 1
        for k in sorted(set(base.breakdown) | set(test.breakdown)):
            if base.breakdown.get(k) != test.breakdown.get(k):
                print(f"breakdown[{k}]:\n  base {base.breakdown.get(k)}"
                      f"\n  test {test.breakdown.get(k)}")
    if base.elapsed_total != test.elapsed_total:
        bad += 1
        print(f"elapsed_total: {base.elapsed_total!r} != "
              f"{test.elapsed_total!r}")
    print(f"shard block: {test.perf.shard}")
    print("IDENTICAL" if not bad else f"MISMATCH ({bad})")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
