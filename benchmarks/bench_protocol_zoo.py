"""The protocol-zoo leaderboard: race every registered collective protocol.

Runs :func:`repro.analysis.protocol_zoo.protocol_zoo` — every registered
protocol against every workload pattern (tile, IOR, Flash, BT-IO), with
``parcoll`` and ``nodeagg``+FA golden-section tuned — and commits the
leaderboard plus the advisor's per-pattern picks.

Claims under test (sanity of the zoo, not the paper):

* every (pattern, protocol) cell completes and reports positive write
  bandwidth — the registry seam runs every protocol on every pattern;
* on every pattern, some collective protocol beats ``independent``
  (collective aggregation earns its complexity);
* the advisor's pick per pattern is a genuine argmax of the raced cells.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_protocol_zoo.py [--smoke]

``--smoke`` shrinks the race (8 procs, 3 golden-section evals) for CI.
Results land in ``BENCH_protocol_zoo.json`` at the repo root; exit
status 1 if a claim fails.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys

from _common import executor, scale

from repro.analysis.protocol_zoo import protocol_zoo
from repro.mpiio.protocols import available_protocols

OUT = (pathlib.Path(__file__).resolve().parent.parent
       / "BENCH_protocol_zoo.json")


def main(smoke: bool = False) -> int:
    if smoke:
        nprocs, max_evals, run_scale = 16, 3, "small"
    elif scale() == "paper":
        nprocs, max_evals, run_scale = 64, 8, "paper"
    else:
        nprocs, max_evals, run_scale = 16, 6, "small"

    board = protocol_zoo(nprocs=nprocs, scale=run_scale,
                         max_evals=max_evals, executor=executor())
    print(board.summary())

    problems: list[str] = []
    for e in board.entries:
        if e.write_mb_s <= 0:
            problems.append(f"{e.pattern}/{e.label}: no write bandwidth")
    for pattern, pick in board.picks.items():
        cells = board.pattern_entries(pattern)
        best = max(c.write_mb_s for c in cells)
        if pick.write_mb_s < best:
            problems.append(f"{pattern}: pick {pick.label} is not argmax")
        indep = next((c for c in cells if c.label == "independent"), None)
        if indep is not None and pick.write_mb_s <= indep.write_mb_s:
            problems.append(
                f"{pattern}: no collective protocol beats independent")
    ok = not problems
    for p in problems:
        print(f"FAIL: {p}", file=sys.stderr)

    out = {
        "benchmark": "protocol_zoo",
        "python": platform.python_version(),
        "scale": run_scale,
        "smoke": smoke,
        "nprocs": nprocs,
        "protocols": list(available_protocols()),
        "leaderboard": board.to_dict(),
        "advisor": {p: {"protocol": e.protocol, "label": e.label,
                        "hints": dict(e.hints),
                        "write_mb_s": round(e.write_mb_s, 3)}
                    for p, e in board.picks.items()},
        "claims_ok": ok,
    }
    OUT.write_text(json.dumps(out, indent=2) + "\n")
    print(f"\nwrote {OUT}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(smoke="--smoke" in sys.argv[1:]))
