"""Figure 1: the collective wall — sync share of MPI-Tile-IO time vs scale.

Claim under test: the share of time spent in synchronization grows with
the process count and comes to dominate (the paper measures 72% at 512
processes).
"""

from _common import procs_for, record, run_once, scale

from repro.harness.figures import fig01_collective_wall


def test_fig01_collective_wall(benchmark):
    procs = procs_for(small=(16, 32, 64, 128, 256), paper=(32, 64, 128, 256, 512))
    result = run_once(benchmark, fig01_collective_wall, procs=procs,
                      scale=scale())
    record(result)
    shares = result.series["sync_share"]
    # the wall: sync share grows monotonically-ish and dominates at scale
    assert shares[procs[-1]] > shares[procs[0]]
    assert shares[procs[-1]] > 0.5
