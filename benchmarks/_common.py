"""Shared benchmark plumbing.

Every benchmark regenerates one paper figure via
:mod:`repro.harness.figures`, times the full experiment with
pytest-benchmark (one round — these are simulations, deterministic by
construction), prints the paper-style table, and writes it to
``benchmarks/out/`` so EXPERIMENTS.md can be assembled from a run.

Scale is controlled by ``REPRO_SCALE``: ``small`` (default, finishes in
seconds-to-minutes) or ``paper`` (the paper's process counts, minutes+).
Parallelism is controlled by ``REPRO_JOBS`` (worker-process count; the
figure functions pick it up through their default executor) and the
persistent run cache by ``REPRO_RUNCACHE`` (``0`` disables, a path
relocates it) — see :mod:`repro.harness.parallel`.
"""

from __future__ import annotations

import os
import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"
RUNCACHE_DIR = pathlib.Path(__file__).parent / ".runcache"


def scale() -> str:
    s = os.environ.get("REPRO_SCALE", "small")
    if s not in ("small", "paper"):
        raise ValueError(f"REPRO_SCALE must be 'small' or 'paper', got {s!r}")
    return s


def jobs() -> int:
    """Worker-process count from ``REPRO_JOBS`` (default 1 = serial)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}")


def executor():
    """The environment-configured experiment executor (REPRO_JOBS /
    REPRO_RUNCACHE); what every figure benchmark evaluates through."""
    from repro.harness.parallel import ExperimentExecutor

    return ExperimentExecutor.from_env()


def procs_for(small: tuple[int, ...], paper: tuple[int, ...]) -> tuple[int, ...]:
    return paper if scale() == "paper" else small


def record(result) -> None:
    """Print the figure table and persist it for EXPERIMENTS.md."""
    text = result.to_table()
    print("\n" + text)
    OUT_DIR.mkdir(exist_ok=True)
    slug = result.figure.lower().replace(" ", "")
    (OUT_DIR / f"{slug}.txt").write_text(text + "\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
