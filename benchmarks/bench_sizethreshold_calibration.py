"""Calibrate the ``sizethreshold`` backend from detailed schedules.

The ``sizethreshold:<bytes>`` backend (ROADMAP's size-dependent policy)
runs small collectives through the detailed message-schedule model and
large ones through the analytic LogP cost.  The crossover is an
empirical property of the network parameters: per-message overheads and
tree shape dominate small collectives, bandwidth dominates large ones,
and somewhere in between the analytic cost converges to the schedule's
answer.  This bench measures that convergence directly — simulated
elapsed time of the same collective under both fidelities across a size
ladder — and picks the smallest size from which the analytic model stays
within ``TOLERANCE`` of detailed, then validates a
``sizethreshold:<picked>`` backend against full-detailed simulated time
and event count.

Calibration runs one rank per node — the placement the LogP cost
assumes.  With ranks sharing a NIC, the detailed schedule serializes
their traffic while the analytic cost does not, so the two never
converge at large sizes; that is a (documented) analytic-model
limitation, not a crossover, and calibrating against it would push the
threshold to infinity.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_sizethreshold_calibration.py

Results land in ``BENCH_sizethreshold_calibration.json`` at the repo
root.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys

from repro.cluster.machine import MachineConfig
from repro.simmpi.world import World

NPROCS = 32
REPS = 4
#: per-rank collective payload sizes swept, bytes
SIZES = (64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20)
#: analytic-vs-detailed relative error accepted above the threshold
TOLERANCE = 0.15
KINDS = ("alltoall", "allreduce")
OUT = (pathlib.Path(__file__).resolve().parent.parent
       / "BENCH_sizethreshold_calibration.json")


def run_collectives(mode: str, kind: str, nbytes: int) -> tuple[float, int]:
    """Simulated elapsed seconds (and engine events) of REPS collectives."""
    world = World(MachineConfig(nprocs=NPROCS, cores_per_node=1),
                  collective_mode=mode)

    def program(comm):
        for _ in range(REPS):
            if kind == "alltoall":
                yield from comm.alltoall([0] * comm.size, nbytes_each=nbytes)
            else:
                yield from comm.allreduce(0, nbytes=nbytes)
        return None

    world.launch(program)
    return world.engine.now, world.engine.effects_dispatched


def pick_threshold(errors: dict[int, float]) -> int:
    """Smallest size from which every error is within TOLERANCE.

    Falls back to the largest swept size when the analytic model never
    converges (then sizethreshold degenerates to detailed-everywhere,
    which is at least correct).
    """
    sizes = sorted(errors)
    picked = sizes[-1]
    for i, size in enumerate(sizes):
        if all(errors[s] <= TOLERANCE for s in sizes[i:]):
            picked = size
            break
    return picked


def main() -> int:
    curves: dict[str, list[dict]] = {}
    per_kind_threshold: dict[str, int] = {}
    for kind in KINDS:
        rows = []
        errors: dict[int, float] = {}
        for size in SIZES:
            det_t, det_ev = run_collectives("detailed", kind, size)
            ana_t, ana_ev = run_collectives("analytic", kind, size)
            err = abs(ana_t - det_t) / det_t if det_t > 0 else 0.0
            errors[size] = err
            rows.append({
                "nbytes": size,
                "detailed_s": det_t,
                "analytic_s": ana_t,
                "rel_error": round(err, 4),
                "detailed_events": det_ev,
                "analytic_events": ana_ev,
            })
            print(f"{kind:>9} {size:>8}B: detailed {det_t:.6g}s "
                  f"analytic {ana_t:.6g}s err {err * 100:5.1f}%")
        curves[kind] = rows
        per_kind_threshold[kind] = pick_threshold(errors)
        print(f"{kind}: analytic converges from "
              f"{per_kind_threshold[kind]} bytes")

    # one threshold must serve every collective the backend dispatches:
    # take the most conservative (largest) converged size
    threshold = max(per_kind_threshold.values())
    spec = f"sizethreshold:{threshold}"

    # validation: the calibrated backend should track detailed simulated
    # time below the threshold exactly (same path) and cost fewer engine
    # events than detailed across the sweep
    validation = []
    ok = True
    for kind in KINDS:
        for size in SIZES:
            st_t, st_ev = run_collectives(spec, kind, size)
            det = next(r for r in curves[kind] if r["nbytes"] == size)
            if size < threshold:
                exact = st_t == det["detailed_s"]
                ok = ok and exact
                validation.append({"kind": kind, "nbytes": size,
                                   "path": "detailed", "exact_match": exact})
            else:
                err = (abs(st_t - det["detailed_s"]) / det["detailed_s"]
                       if det["detailed_s"] > 0 else 0.0)
                ok = ok and err <= TOLERANCE and st_ev < det["detailed_events"]
                validation.append({"kind": kind, "nbytes": size,
                                   "path": "analytic",
                                   "rel_error": round(err, 4),
                                   "events_saved":
                                       det["detailed_events"] - st_ev})

    out = {
        "benchmark": "sizethreshold_calibration",
        "python": platform.python_version(),
        "nprocs": NPROCS,
        "reps": REPS,
        "tolerance": TOLERANCE,
        "per_kind_threshold": per_kind_threshold,
        "picked_threshold": threshold,
        "backend_spec": spec,
        "calibration_ok": ok,
        "curves": curves,
        "validation": validation,
    }
    OUT.write_text(json.dumps(out, indent=2) + "\n")
    print(f"\npicked {spec} (tolerance {TOLERANCE * 100:.0f}%)")
    print(f"wrote {OUT}")
    if not ok:
        print("FAIL: calibrated backend did not validate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
