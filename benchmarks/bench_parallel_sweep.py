"""Wall-clock of serial vs process-pool vs warm-cache sweep execution.

Runs a fig-9-style sweep (tile-IO collective write: ext2ph baseline plus
two ParColl group-count candidates per process count) three ways:

* ``serial``    — ``ExperimentExecutor(jobs=1)``, no cache (the old
  strictly-serial behavior of the figure functions);
* ``parallel``  — ``jobs=N`` (default 4, override with ``REPRO_JOBS``),
  no cache;
* ``warm``      — ``jobs=1`` against a pre-filled run cache (the
  re-assembly / CI-re-run case: every point is a cache hit).

All three must produce bit-identical metrics (asserted), since every
point is a deterministic simulation.  Results land in
``BENCH_parallel_sweep.json`` at the repo root, including the host's CPU
count — process-pool speedup is bounded by physical parallelism, so a
single-core container reports ~1x for ``parallel`` while ``warm`` stays
~free everywhere.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import tempfile
import time

from repro.harness.parallel import (ExperimentExecutor, ExperimentTask,
                                    RunCache)
from repro.harness.report import mb_per_s
from repro.harness.runner import ExperimentConfig, RunResult
from repro.workloads import TileIOConfig

PROCS = (64, 128, 256)
JOBS = int(os.environ.get("REPRO_JOBS", "4") or 4)
OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_parallel_sweep.json"


def build_tasks() -> list[ExperimentTask]:
    """The fig-9 shape: baseline + ParColl candidates per process count."""
    tasks = []
    for p in PROCS:
        variants = [{"protocol": "ext2ph"}]
        variants += [{"protocol": "parcoll", "parcoll_ngroups": g}
                     for g in sorted({max(2, p // 32), max(2, p // 16)})]
        for hints in variants:
            wl = TileIOConfig(tile_rows=256, tile_cols=192, element_size=64,
                              hints=hints)
            cfg = ExperimentConfig(
                nprocs=p,
                lustre={"n_osts": 16, "default_stripe_count": 16})
            tasks.append(ExperimentTask(cfg, "tile_io", wl))
    return tasks


def fingerprint(results: list[RunResult]) -> list[tuple]:
    """The metrics that must be bit-identical across execution modes."""
    return [(r.write_bandwidth, r.elapsed_total, r.events, r.messages,
             tuple(sorted((k, v["sum"]) for k, v in r.breakdown.items())))
            for r in results]


def timed(executor: ExperimentExecutor,
          tasks: list[ExperimentTask]) -> tuple[float, list[RunResult]]:
    t0 = time.perf_counter()
    results = executor.run_many(tasks)
    return time.perf_counter() - t0, results


def main() -> int:
    tasks = build_tasks()
    cpus = os.cpu_count() or 1
    print(f"{len(tasks)} sweep points, jobs={JOBS}, host cpus={cpus}")

    serial_s, ref = timed(ExperimentExecutor(jobs=1, cache=False), tasks)
    print(f"serial (jobs=1, no cache):  {serial_s:7.3f}s")

    parallel_s, par = timed(ExperimentExecutor(jobs=JOBS, cache=False), tasks)
    print(f"parallel (jobs={JOBS}, no cache): {parallel_s:7.3f}s")

    with tempfile.TemporaryDirectory() as tmp:
        cache = RunCache(tmp)
        fill_s, filled = timed(ExperimentExecutor(jobs=JOBS, cache=cache),
                               tasks)
        warm_s, warm = timed(ExperimentExecutor(jobs=1, cache=cache), tasks)
        hits = cache.hits
    print(f"cold fill (jobs={JOBS}, cache):  {fill_s:7.3f}s")
    print(f"warm (jobs=1, all cached):  {warm_s:7.3f}s ({hits} hits)")

    identical = (fingerprint(ref) == fingerprint(par)
                 == fingerprint(filled) == fingerprint(warm))
    if not identical:
        print("FAIL: execution modes disagree on metrics", file=sys.stderr)

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cache_speedup = serial_s / warm_s if warm_s > 0 else float("inf")
    out = {
        "benchmark": "parallel_sweep",
        "workload": "fig-9-style tile-IO sweep: ext2ph + 2 ParColl "
                    "candidates per process count",
        "python": platform.python_version(),
        "host_cpus": cpus,
        "jobs": JOBS,
        "points": len(tasks),
        "procs": list(PROCS),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "cold_fill_s": round(fill_s, 3),
        "warm_cache_s": round(warm_s, 3),
        "parallel_speedup": round(speedup, 2),
        "warm_cache_speedup": round(cache_speedup, 1),
        "bit_identical_across_modes": identical,
        "sim_write_mb_s": [round(mb_per_s(r.write_bandwidth), 1)
                           for r in ref],
        "note": ("process-pool speedup is bounded by host_cpus; the "
                 "warm-cache path is hardware-independent"),
    }
    OUT.write_text(json.dumps(out, indent=2) + "\n")
    print(f"\nparallel {speedup:.2f}x, warm cache {cache_speedup:.0f}x "
          f"vs cold serial; wrote {OUT}")
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
