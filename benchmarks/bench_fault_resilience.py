"""Resilience under injected faults: ParColl vs flat extended two-phase.

Two claims, both absent from the paper but implied by its partitioning
argument:

* **retry recovers a flaky OST** — under a flaky-RPC plan (every RPC to
  OST 0 lost with probability 0.5), the client-side retry/timeout/
  backoff machinery completes the run at a finite fraction of healthy
  bandwidth, while a no-retry client (``retry_max_attempts=1``) aborts
  with :class:`~repro.errors.FaultExhaustedError`;
* **partitioning contains a straggler OST** — with one OST serving at
  10% of nominal rate, flat ext2ph re-couples every rank to the slow
  aggregator on every collective call (the median rank degrades like
  the worst one), while ParColl confines the damage to the one subgroup
  whose File Area holds the slow OST — its median rank keeps (nearly)
  full speed and strictly fewer ranks are affected.

Scale comes from ``REPRO_SCALE`` (small | paper), parallelism from
``REPRO_JOBS`` / ``REPRO_RUNCACHE`` — fault runs hit the same run cache
and are bit-identical at any job count.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_fault_resilience.py

Results land in ``BENCH_fault_resilience.json`` at the repo root; exit
status 1 if either claim fails.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys

from _common import executor, scale

from repro.errors import FaultExhaustedError
from repro.harness.fault_sweep import (_median, fault_class, fault_sweep,
                                       rank_elapsed, scale_info, sweep_tasks)

OUT = (pathlib.Path(__file__).resolve().parent.parent
       / "BENCH_fault_resilience.json")

#: loss probability of the flaky-OST plan (aborts a no-retry client
#: almost surely, survivable with a deepened attempt budget)
FLAKY_PROB = 0.5
#: straggler severity: OST 0 at 10% of nominal service rate
STRAGGLER_SEVERITY = 0.9


def _run_point(fc, severity: float, proto: str, retry: dict | None):
    """One (fault, severity, protocol) cell through the executor."""
    tasks = sweep_tasks(fc, (severity,), scale(), protocols=(proto,),
                        retry=retry)
    return executor().run_many(tasks)[0]


def flaky_retry_claim() -> dict:
    """Claim (a): retry/backoff completes where no-retry aborts."""
    fc = fault_class("flaky")
    healthy = _run_point(fc, 0.0, "ext2ph", None)
    recovered = _run_point(fc, FLAKY_PROB, "ext2ph", fc.retry)
    fr = recovered.breakdown.get("fault_retry", {})

    no_retry_error = None
    try:
        _run_point(fc, FLAKY_PROB, "ext2ph", {"max_attempts": 1})
    except FaultExhaustedError as exc:
        no_retry_error = {"ost": exc.ost, "attempts": exc.attempts,
                          "virtual_time": exc.virtual_time,
                          "message": str(exc)}

    recovered_bw = recovered.write_bandwidth
    ok = no_retry_error is not None and recovered_bw > 0
    print(f"flaky (p={FLAKY_PROB}): healthy "
          f"{healthy.write_bandwidth / 1e6:.1f} MB/s, with retry "
          f"{recovered_bw / 1e6:.1f} MB/s "
          f"({fr.get('count', 0):.0f} lost RPCs recovered, "
          f"{fr.get('sum', 0.0):.3f} s in retries); no-retry "
          f"{'aborted: ' + no_retry_error['message'] if no_retry_error else 'DID NOT ABORT'}")
    return {
        "flaky_prob": FLAKY_PROB,
        "healthy_bw": healthy.write_bandwidth,
        "with_retry": {
            "bw": recovered_bw,
            "fraction_of_healthy": (recovered_bw / healthy.write_bandwidth
                                    if healthy.write_bandwidth else 0.0),
            "retry_seconds": fr.get("sum", 0.0),
            "lost_rpcs": int(fr.get("count", 0)),
            "retry_policy": dict(fc.retry or {}),
        },
        "no_retry": {"error": no_retry_error},
        "claim_retry_recovers_throughput": ok,
    }


def straggler_containment_claim() -> dict:
    """Claim (b): ParColl degrades strictly less than flat ext2ph."""
    fc = fault_class("straggler")
    sweep = fault_sweep("straggler",
                        severities=(0.0, 0.5, STRAGGLER_SEVERITY),
                        scale=scale(), executor=executor())
    retained = sweep.series
    flat = retained["ext2ph retained"][STRAGGLER_SEVERITY]
    part = retained["parcoll retained"][STRAGGLER_SEVERITY]

    info = scale_info(scale())
    flat_res = _run_point(fc, STRAGGLER_SEVERITY, "ext2ph", None)
    part_res = _run_point(fc, STRAGGLER_SEVERITY, "parcoll", None)
    flat_h = _median(rank_elapsed(_run_point(fc, 0.0, "ext2ph", None)))
    part_h = _median(rank_elapsed(_run_point(fc, 0.0, "parcoll", None)))
    flat_aff = sum(1 for e in rank_elapsed(flat_res) if e > 1.5 * flat_h)
    part_aff = sum(1 for e in rank_elapsed(part_res) if e > 1.5 * part_h)

    ok = part > flat and part_aff < flat_aff
    print(f"straggler (severity {STRAGGLER_SEVERITY}): median rank keeps "
          f"{100 * flat:.1f}% under ext2ph vs {100 * part:.1f}% under "
          f"parcoll; affected ranks {flat_aff}/{info['nprocs']} vs "
          f"{part_aff}/{info['nprocs']}")
    print(sweep.to_table())
    return {
        "severity": STRAGGLER_SEVERITY,
        "median_retained": {"ext2ph": flat, "parcoll": part},
        "affected_ranks": {"ext2ph": flat_aff, "parcoll": part_aff,
                           "nprocs": info["nprocs"]},
        "degradation_curves": {
            "headers": sweep.headers,
            "rows": sweep.rows,
            "series": sweep.series,
        },
        "claim_parcoll_contains_straggler": ok,
    }


def main() -> int:
    flaky = flaky_retry_claim()
    straggler = straggler_containment_claim()
    ok = (flaky["claim_retry_recovers_throughput"]
          and straggler["claim_parcoll_contains_straggler"])
    out = {
        "benchmark": "fault_resilience",
        "python": platform.python_version(),
        "scale": scale(),
        "flaky": flaky,
        "straggler": straggler,
        "claims_ok": ok,
    }
    OUT.write_text(json.dumps(out, indent=2) + "\n")
    print(f"\nwrote {OUT}")
    if not ok:
        print("FAIL: a resilience claim did not hold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
