"""Hot-path speedup benchmark with a built-in determinism gate.

Runs the three hot-path configs (:mod:`repro.harness.hotpath`) and
checks two things at once:

1. **Determinism** — every virtual-time metric (bandwidths, elapsed,
   effect and message counts, verified file hash) must equal the
   pre-optimization reference in ``benchmarks/ref_hotpath.json`` bit
   for bit.  Any mismatch is a hard failure: an optimization that
   changes simulated results is a bug, not a speedup.
2. **Wall clock** — host seconds per run, compared against the
   pre-optimization ``baseline_wall_s`` recorded in the same reference
   (captured back-to-back with the optimized timings on one machine).

Results land in ``BENCH_hotpath.json`` at the repo root.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py          # full scale
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke  # CI gate

``--smoke`` shrinks every config to seconds and additionally enforces
the CI regression gate: wall clock must stay within ``REGRESSION_FACTOR``
of ``benchmarks/smoke_baseline.json`` (a soft 1.5x threshold, because CI
runners are noisy and absolute speed varies by host generation; the
determinism assertions are exact everywhere), and events/sec must stay
above the committed ``_events_per_sec_floor`` in the same file.

Both modes also run the **macro equivalence gate**: every config is run
once with ``collective_mode='detailed'`` and once with ``'macro'``, and
all virtual-time metrics except the event count must match bit for bit.
Full mode additionally records the macro-fidelity headline speedup for
``tileio_detailed`` and a 4096-rank scale probe
(:func:`repro.harness.hotpath.run_scale`) that only the macro engine
makes tractable.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

from repro.harness.hotpath import CONFIGS, run_config

HERE = pathlib.Path(__file__).resolve().parent
REF = HERE / "ref_hotpath.json"
SMOKE_BASELINE = HERE / "smoke_baseline.json"
OUT = HERE.parent / "BENCH_hotpath.json"

#: smoke wall clock may grow to this multiple of the committed baseline
REGRESSION_FACTOR = 1.5

#: timing repetitions (best-of), keyed by (config, smoke)
REPS_FULL = {"tileio_detailed": 3, "btio_iview": 2, "flash_verified": 2}
REPS_SMOKE = 3


def bench_config(name: str, smoke: bool, reps: int) -> dict:
    """Best-of-``reps`` wall clock plus the final run's perf counters."""
    best_wall = float("inf")
    metrics = None
    perf = None
    for _ in range(reps):
        perf_out: list = []
        t0 = time.perf_counter()
        metrics = run_config(name, smoke=smoke, perf_out=perf_out)
        wall = time.perf_counter() - t0
        perf = perf_out[0]
        best_wall = min(best_wall, wall)
    return {"wall_s": round(best_wall, 4), "metrics": metrics,
            "perf": {
                "effects_dispatched": perf.effects_dispatched,
                "events_per_sec": round(perf.events_per_sec, 1),
                "heap_pushes": perf.heap_pushes,
                "heap_bypasses": perf.heap_bypasses,
                "exact_matches": perf.exact_matches,
                "wildcard_matches": perf.wildcard_matches,
                "segments_vectorized": perf.segments_vectorized,
                "rounds_planned": perf.rounds_planned,
                "macro_rounds": perf.macro_rounds,
                "messages_coalesced": perf.messages_coalesced,
            }}


def check_determinism(key: str, got: dict, expected: dict) -> list[str]:
    """Compare a run's metrics against one reference entry."""
    errors = []
    for field, want in expected.items():
        if field == "baseline_wall_s":
            continue
        if got.get(field) != want:
            errors.append(f"{key}: {field} = {got.get(field)!r}, "
                          f"reference says {want!r}")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small configs + CI wall-clock gate")
    args = parser.parse_args(argv)

    ref = json.loads(REF.read_text())["configs"]
    smoke = args.smoke
    results: dict[str, dict] = {}
    errors: list[str] = []
    for name in CONFIGS:
        key = name + ("_smoke" if smoke else "")
        reps = REPS_SMOKE if smoke else REPS_FULL[name]
        r = bench_config(name, smoke, reps)
        expected = ref[key]
        errors.extend(check_determinism(key, r["metrics"], expected))
        baseline = expected.get("baseline_wall_s")
        entry = {
            "wall_s": r["wall_s"],
            "baseline_wall_s": baseline,
            "speedup": (round(baseline / r["wall_s"], 3)
                        if baseline else None),
            "sim_write_bandwidth": r["metrics"]["write_bandwidth"],
            "events": r["metrics"]["events"],
            "messages": r["metrics"]["messages"],
            "file_sha256": r["metrics"]["file_sha256"],
            "perf": r["perf"],
        }
        results[key] = entry
        status = "ok" if not errors else "DETERMINISM MISMATCH"
        print(f"{key:>24}: wall {entry['wall_s']:.3f}s  "
              f"baseline {baseline}s  speedup {entry['speedup']}x  "
              f"[{status}]")

    # macro equivalence gate: run every config under an explicit
    # 'detailed' and 'macro' override; every virtual-time field except
    # the event count must match bit for bit (the macro engine replays
    # the same physics through far fewer scheduler events)
    equiv: dict = {}
    for name in CONFIGS:
        key = name + ("_smoke" if smoke else "")
        det = run_config(name, smoke=smoke, collective_mode="detailed")
        reps_m = 3 if (not smoke and name == "tileio_detailed") else 1
        mac = None
        mac_wall = float("inf")
        for _ in range(reps_m):
            t0 = time.perf_counter()
            mac = run_config(name, smoke=smoke, collective_mode="macro")
            mac_wall = min(mac_wall, time.perf_counter() - t0)
        diffs = [k for k in det if k != "events" and det[k] != mac[k]]
        equiv[key] = {
            "bit_identical": not diffs,
            "events_detailed": det["events"],
            "events_macro": mac["events"],
            "macro_wall_s": round(mac_wall, 4),
        }
        print(f"{key:>24}: macro {'==' if not diffs else '!='} detailed  "
              f"events {det['events']} -> {mac['events']}  "
              f"macro wall {mac_wall:.3f}s")
        if diffs:
            errors.append(f"{key}: macro/detailed metrics differ in "
                          f"{diffs} (reference says bit-identical)")

    macro_speedup = None
    if not smoke:
        baseline = ref["tileio_detailed"].get("baseline_wall_s")
        mw = equiv["tileio_detailed"]["macro_wall_s"]
        if baseline:
            macro_speedup = {
                "config": "tileio_detailed",
                "baseline_wall_s": baseline,
                "macro_wall_s": mw,
                "speedup": round(baseline / mw, 3),
            }
            print(f"macro headline: tileio_detailed "
                  f"{macro_speedup['speedup']}x vs pre-optimization "
                  "engine")

    scale = None
    if not smoke:
        from repro.harness.hotpath import run_scale

        scale = run_scale(4096)
        print(f"scale probe: {scale['nprocs']} ranks in "
              f"{scale['wall_s']:.1f}s  "
              f"({scale['events_per_sec']:.0f} events/s, "
              f"{scale['messages']} messages)")

    gate: dict = {}
    if smoke:
        base = json.loads(SMOKE_BASELINE.read_text())
        eps_floor = base.get("_events_per_sec_floor")
        for key, entry in results.items():
            limit = base[key] * REGRESSION_FACTOR
            ok = entry["wall_s"] <= limit
            gate[key] = {"wall_s": entry["wall_s"],
                         "baseline_wall_s": base[key],
                         "limit_s": round(limit, 4), "ok": ok}
            if not ok:
                errors.append(
                    f"{key}: wall {entry['wall_s']:.3f}s exceeds "
                    f"{REGRESSION_FACTOR}x smoke baseline "
                    f"({base[key]}s -> limit {limit:.3f}s)")
            if eps_floor:
                eps = entry["perf"]["events_per_sec"]
                gate[key]["events_per_sec"] = eps
                gate[key]["events_per_sec_floor"] = eps_floor
                if eps < eps_floor:
                    gate[key]["ok"] = False
                    errors.append(
                        f"{key}: {eps:.0f} events/s below the committed "
                        f"floor of {eps_floor} (engine throughput "
                        "regression)")

    payload = {
        "benchmark": "hotpath",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "determinism_ok": not any("MISMATCH" in e or "reference says" in e
                                  for e in errors),
        "results": results,
        "macro_equivalence": equiv,
    }
    if macro_speedup:
        payload["macro_speedup"] = macro_speedup
    if scale:
        payload["scale_macro"] = scale
    if gate:
        payload["smoke_gate"] = gate
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT}")

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    full_head = results.get("tileio_detailed")
    if full_head and full_head["speedup"] is not None:
        print(f"headline: tileio_detailed {full_head['speedup']}x "
              "vs pre-optimization engine")
    return 0


if __name__ == "__main__":
    sys.exit(main())
