"""Extension E: the collective wall across file-system characters.

The paper's Section 6 proposes studying the wall "over other massively
parallel platforms with different underlying file systems, such as GPFS
and PVFS".  This benchmark runs the tile-IO wall experiment over three
file-system presets (Lustre-XT with DLM extent locks, a lock-free
PVFS-like store, a token-based GPFS-like store) and reports how the
baseline's wall and ParColl's benefit change.

The claim under test is mechanism-level: ParColl's benefit comes from
shrinking synchronization, so it must persist across file systems even as
their absolute bandwidths differ.
"""

from dataclasses import asdict
from functools import partial

from _common import record, run_once

from repro.harness.figures import FigureResult
from repro.harness.report import mb_per_s
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.lustre.presets import PRESET_NAMES, preset
from repro.workloads import TileIOConfig, tile_io_program


def compare_filesystems(nprocs: int = 64, ngroups: int = 8) -> FigureResult:
    rows = []
    series = {}
    for name in PRESET_NAMES:
        params = preset(name, store_data=False)
        for proto, g in (("ext2ph", 1), ("parcoll", ngroups)):
            cfg = ExperimentConfig(nprocs=nprocs, lustre=asdict(params))
            wl = TileIOConfig(tile_rows=1024, tile_cols=768, element_size=64,
                              hints={"protocol": proto,
                                     "parcoll_ngroups": g})
            res = run_experiment(cfg, partial(tile_io_program, wl))
            bw = mb_per_s(res.write_bandwidth)
            series[(name, proto)] = bw
            rows.append([name, f"{proto}-{g}", round(bw, 0),
                         round(100 * res.category_share("sync"), 1)])
    return FigureResult(
        figure="Extension E",
        title=f"Collective wall across file systems (tile-IO, {nprocs} procs)",
        headers=["file system", "variant", "write MB/s", "sync %"],
        rows=rows,
        series=series,
        notes="paper Section 6 future work: the wall (and ParColl's cure) "
              "is a protocol property, not a Lustre artifact",
    )


def test_cross_filesystem(benchmark):
    result = run_once(benchmark, compare_filesystems)
    record(result)
    s = result.series
    for name in PRESET_NAMES:
        # ParColl wins on every file-system character
        assert s[(name, "parcoll")] > s[(name, "ext2ph")], name
