"""Ablation C: what the extent-lock model contributes.

The Lustre substrate charges lock grants, revocations, and (for reads)
seeks.  This ablation runs Flash I/O *without collective buffering* with
the lock costs on and off: with them, uncoordinated clients thrash each
other's locks (the paper's ~60 MB/s "w/o Coll" collapse); without them,
the collapse disappears — demonstrating the mechanism, not just the
number.
"""

from functools import partial

from _common import record, run_once

from repro.harness.figures import FigureResult, PAPER_LUSTRE
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.harness.report import mb_per_s
from repro.workloads import FlashIOConfig, flash_io_program

FLASH = dict(nxb=16, nyb=16, nzb=16, blocks_per_proc=16, nvars=12)


def compare_lock_models(nprocs: int = 64) -> FigureResult:
    rows = []
    series = {}
    for name, lustre_extra in (
        ("locks on", {}),
        ("locks off", {"lock_revoke_cost": 0.0, "lock_grant_cost": 0.0}),
    ):
        for proto in ("ext2ph", "independent"):
            cfg = ExperimentConfig(
                nprocs=nprocs,
                lustre={**PAPER_LUSTRE, **lustre_extra},
            )
            wl = FlashIOConfig(hints={"protocol": proto}, **FLASH)
            res = run_experiment(cfg, partial(flash_io_program, wl))
            bw = mb_per_s(res.write_bandwidth)
            series[(name, proto)] = bw
            rows.append([name, proto, round(bw, 0)])
    return FigureResult(
        figure="Ablation C",
        title=f"Extent-lock model contribution (Flash I/O, {nprocs} procs)",
        headers=["lock model", "protocol", "MB/s"],
        rows=rows,
        series=series,
        notes="lock thrashing is what separates collective from "
              "uncoordinated I/O",
    )


def test_ablation_lock_model(benchmark):
    result = run_once(benchmark, compare_lock_models)
    record(result)
    s = result.series
    gap_with = s[("locks on", "ext2ph")] / s[("locks on", "independent")]
    gap_without = (s[("locks off", "ext2ph")]
                   / s[("locks off", "independent")])
    # the collective-vs-independent gap is driven by the lock model
    assert gap_with > gap_without
    assert gap_with > 1.5
