"""Figure 2: collective-I/O time breakdown (sync vs p2p vs file I/O).

Claim under test: synchronization time grows much faster with the process
count than point-to-point exchange and file I/O, overtaking both.
"""

from _common import procs_for, record, run_once, scale

from repro.harness.figures import fig02_breakdown


def test_fig02_breakdown(benchmark):
    procs = procs_for(small=(16, 32, 64, 128), paper=(32, 64, 128, 256, 512))
    result = run_once(benchmark, fig02_breakdown, procs=procs, scale=scale())
    record(result)
    sync = result.series["sync"]
    exchange = result.series["exchange"]
    io = result.series["io"]
    p_lo, p_hi = procs[0], procs[-1]
    # sync grows faster than the other two components
    sync_growth = sync[p_hi] / max(sync[p_lo], 1e-12)
    assert sync_growth > exchange[p_hi] / max(exchange[p_lo], 1e-12)
    # and dominates at the largest scale
    assert sync[p_hi] > io[p_hi]
    assert sync[p_hi] > exchange[p_hi]
