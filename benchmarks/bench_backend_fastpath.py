"""Wall-clock cost of the collective-fidelity backends (fig-9-style sweep).

Runs the same tile-IO collective-write experiment through the
``detailed``, ``analytic``, and ``hybrid`` backends at growing rank
counts and records *host* wall-clock per run — the point of the cheaper
backends is simulator speed, not simulated time.  Results land in
``BENCH_backend_fastpath.json`` at the repo root.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_backend_fastpath.py

The rank ladder stops growing once the slowest backend (detailed)
exceeds the time budget, so the sweep always finishes quickly; the JSON
records the largest rank count where all three backends completed.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time
from functools import partial

from repro.harness.runner import ExperimentConfig, run_experiment
from repro.harness.report import mb_per_s
from repro.workloads import TileIOConfig, tile_io_program

MODES = ("detailed", "analytic", "hybrid:sync=analytic,default=detailed")
RANKS = (32, 64, 128, 256)
BUDGET_S = 60.0  # per-run ceiling for the slowest backend
OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_backend_fastpath.json"


def run_point(nprocs: int, mode: str) -> dict:
    cfg = ExperimentConfig(nprocs=nprocs, collective_mode=mode,
                           lustre={"n_osts": 16, "default_stripe_count": 16})
    wl = TileIOConfig(tile_rows=256, tile_cols=192, element_size=64,
                      hints={"protocol": "ext2ph"})
    t0 = time.perf_counter()
    res = run_experiment(cfg, partial(tile_io_program, wl))
    wall = time.perf_counter() - t0
    return {
        "backend": res.backend,
        "wall_s": round(wall, 3),
        "sim_write_mb_s": round(mb_per_s(res.write_bandwidth), 1),
        "engine_events": res.events,
        "messages": res.messages,
    }


def main() -> int:
    sweep = []
    for p in RANKS:
        point = {"nprocs": p, "modes": {}}
        for mode in MODES:
            key = mode.split(":", 1)[0]
            r = run_point(p, mode)
            point["modes"][key] = r
            print(f"p={p:4d} {key:>8}: {r['wall_s']:7.3f}s wall, "
                  f"{r['engine_events']:>8} events, "
                  f"{r['sim_write_mb_s']:8.1f} sim MB/s")
        sweep.append(point)
        if point["modes"]["detailed"]["wall_s"] > BUDGET_S:
            print(f"stopping: detailed exceeded {BUDGET_S:.0f}s at p={p}")
            break

    top = sweep[-1]["modes"]
    ok = (top["analytic"]["wall_s"] < top["detailed"]["wall_s"]
          and top["hybrid"]["wall_s"] < top["detailed"]["wall_s"])
    out = {
        "benchmark": "backend_fastpath",
        "workload": "tile-IO collective write, ext2ph, 256x192 tiles x64B",
        "python": platform.python_version(),
        "budget_s": BUDGET_S,
        "top_nprocs": sweep[-1]["nprocs"],
        "fastpath_wins_at_top": ok,
        "sweep": sweep,
    }
    OUT.write_text(json.dumps(out, indent=2) + "\n")
    print(f"\nwrote {OUT}")
    if not ok:
        print("FAIL: analytic/hybrid not faster than detailed at top rank "
              "count", file=sys.stderr)
        return 1
    speedup_a = top["detailed"]["wall_s"] / top["analytic"]["wall_s"]
    speedup_h = top["detailed"]["wall_s"] / top["hybrid"]["wall_s"]
    print(f"at p={sweep[-1]['nprocs']}: analytic {speedup_a:.1f}x, "
          f"hybrid {speedup_h:.1f}x faster than detailed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
