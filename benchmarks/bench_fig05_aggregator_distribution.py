"""Figure 5: the aggregator-distribution worked example (block & cyclic).

Claim under test: the distribution algorithm reproduces the paper's table
exactly — block mapping with four aggregators gives SubGroup1 {N0(P0),
N1(P2)} / SubGroup2 {N2(P4), N3(P6)}; cyclic with three gives
SubGroup1 {N0(P0), N3(P3)} / SubGroup2 {N2(P6)}.
"""

from _common import record, run_once

from repro.harness.figures import fig05_aggregator_distribution


def test_fig05_aggregator_distribution(benchmark):
    result = run_once(benchmark, fig05_aggregator_distribution)
    record(result)
    rows = {(r[0], r[1]): r[2] for r in result.rows}
    assert rows[("block", "SubGroup 1")] == "N0(P0), N1(P2)"
    assert rows[("block", "SubGroup 2")] == "N2(P4), N3(P6)"
    assert rows[("cyclic", "SubGroup 1")] == "N0(P0), N3(P3)"
    assert rows[("cyclic", "SubGroup 2")] == "N2(P6)"
