"""Figure 9: scalability of MPI-Tile-IO — best ParColl vs the baseline.

Claim under test: the baseline's bandwidth saturates (the wall) while
ParColl keeps scaling, so the advantage grows with the process count
(the paper: 416% at 1024 processes, 11.4 vs 2.7 GB/s).
"""

from _common import procs_for, record, run_once, scale

from repro.harness.figures import fig09_scalability


def test_fig09_scalability(benchmark):
    procs = procs_for(small=(32, 64, 128), paper=(128, 256, 512, 1024))
    result = run_once(benchmark, fig09_scalability, procs=procs,
                      scale=scale())
    record(result)
    base = result.series["baseline"]
    pc = result.series["parcoll"]
    p_lo, p_hi = procs[0], procs[-1]
    # the wall pins the baseline (it barely moves across the sweep) ...
    assert base[p_hi] < 1.5 * base[p_lo]
    # ... while ParColl wins by multiples at the largest scale; the ratio
    # grows with P until ParColl reaches machine capacity
    assert pc[p_hi] > 1.5 * base[p_hi]
    peak_ratio = max(pc[p] / base[p] for p in procs)
    assert (pc[p_hi] / base[p_hi] > pc[p_lo] / base[p_lo]
            or peak_ratio > 3.0)
