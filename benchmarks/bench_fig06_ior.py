"""Figure 6: IOR collective write — ParColl-N vs the baseline.

Claim under test: for IOR's contiguous pattern, collective I/O's cost is
pure synchronization, and ParColl recovers an order of magnitude of
bandwidth (the paper: 12.8x over a 380 MB/s baseline at 512 processes,
best at large N).
"""

from _common import procs_for, record, run_once, scale

from repro.harness.figures import fig06_ior


def test_fig06_ior(benchmark):
    procs = procs_for(small=(32, 128), paper=(128, 512))
    groups = (8, 16, 32, 64) if scale() == "paper" else (4, 8, 16, 32)
    result = run_once(benchmark, fig06_ior, procs=procs,
                      group_counts=groups, scale=scale())
    record(result)
    p = procs[-1]
    baseline = result.series["Cray (ext2ph)"][p]
    best = max(result.series[f"ParColl-{g}"][p] for g in groups if g <= p)
    # ParColl must beat the baseline severalfold at the larger scale
    assert best > 3 * baseline
