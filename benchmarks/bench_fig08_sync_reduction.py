"""Figure 8: reduction of synchronization cost with subgroup count.

Claim under test: partitioning reduces the synchronization time both in
absolute value and as a share of total time, until over-partitioning.
"""

from _common import record, run_once, scale

from repro.harness.figures import fig08_sync_reduction


def test_fig08_sync_reduction(benchmark):
    if scale() == "paper":
        nprocs, groups = 512, (1, 2, 4, 8, 16, 32, 64, 128)
    else:
        nprocs, groups = 64, (1, 2, 4, 8, 16, 32)
    result = run_once(benchmark, fig08_sync_reduction, nprocs=nprocs,
                      group_counts=groups, scale=scale())
    record(result)
    sync = result.series["sync_max"]
    best_g = min(sync, key=sync.get)
    assert best_g != 1
    # at least a 2x absolute reduction at the best group count
    assert sync[1] > 2 * sync[best_g]
