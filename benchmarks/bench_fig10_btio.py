"""Figure 10: BT-IO (full mode) — the pattern-(c) workload.

Claims under test: BT-IO's diagonal multi-partitioning requires
intermediate file views (asserted structurally in the test suite), and
ParColl outperforms the baseline at scale with the advantage growing as
the baseline hits the wall.
"""

from _common import procs_for, record, run_once, scale

from repro.harness.figures import fig10_btio


def test_fig10_btio(benchmark):
    procs = procs_for(small=(16, 64, 144), paper=(64, 144, 256, 576))
    result = run_once(benchmark, fig10_btio, procs=procs, scale=scale())
    record(result)
    base = result.series["baseline"]
    pc = result.series["parcoll"]
    p_hi = procs[-1]
    assert pc[p_hi] > base[p_hi]
    # the relative benefit grows with scale
    ratios = [pc[p] / base[p] for p in procs]
    assert ratios[-1] > ratios[0]
