"""Figure 7: MPI-Tile-IO write/read bandwidth vs number of subgroups.

Claims under test: ParColl-1/2 is comparable to the baseline; an interior
optimum exists (the paper: 64 subgroups at 512 processes, +210% write /
+180% read); over-partitioning collapses performance.
"""

from _common import record, run_once, scale

from repro.harness.figures import fig07_tileio_groups


def test_fig07_tileio_groups(benchmark):
    if scale() == "paper":
        nprocs, groups = 512, (1, 2, 4, 8, 16, 32, 64, 128, 256)
    else:
        nprocs, groups = 64, (1, 2, 4, 8, 16, 32)
    result = run_once(benchmark, fig07_tileio_groups, nprocs=nprocs,
                      group_counts=groups, scale=scale())
    record(result)
    w = result.series["write"]
    best_g = max(w, key=w.get)
    # interior optimum: neither the unpartitioned nor the most-partitioned
    assert best_g not in (groups[0], groups[-1])
    # a substantial improvement over the baseline at the optimum
    assert w[best_g] > 1.5 * w[1]
    # over-partitioning gives performance back
    assert w[groups[-1]] < w[best_g]
