"""Ablation A: detailed vs analytic vs hybrid collective timing models.

The large-scale sweeps use the analytic (LogP-style) collective model or
the per-category ``hybrid`` backend; this ablation validates both against
the detailed model (real message schedules) on a workload all three can
afford, and reports the event-count saving that justifies the cheaper
backends at scale.

The hybrid spec defaults to the large-sweep configuration
(``sync`` analytic, everything else detailed) and can be overridden with
``REPRO_HYBRID_SPEC=hybrid:<spec>`` — the benchmark-side face of the CLI's
``--collective-mode`` axis.
"""

import os
from functools import partial

from _common import record, run_once

from repro.harness.figures import FigureResult
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.harness.report import mb_per_s
from repro.workloads import TileIOConfig, tile_io_program

LUSTRE = {"n_osts": 16, "default_stripe_count": 16}


def hybrid_spec() -> str:
    return os.environ.get("REPRO_HYBRID_SPEC",
                          "hybrid:sync=analytic,default=detailed")


def compare_models(nprocs: int = 32) -> FigureResult:
    rows = []
    series = {}
    for mode in ("analytic", hybrid_spec(), "detailed"):
        cfg = ExperimentConfig(nprocs=nprocs, collective_mode=mode,
                               lustre=LUSTRE)
        wl = TileIOConfig(tile_rows=256, tile_cols=192, element_size=64,
                          hints={"protocol": "ext2ph"})
        res = run_experiment(cfg, partial(tile_io_program, wl))
        bw = mb_per_s(res.write_bandwidth)
        key = mode.split(":", 1)[0]
        series[key] = {"bw": bw, "events": res.events,
                       "sync": res.breakdown["sync"]["max"],
                       "backend": res.backend}
        rows.append([key, round(bw, 0),
                     round(res.breakdown["sync"]["max"], 4), res.events])
    return FigureResult(
        figure="Ablation A",
        title=f"Collective model fidelity (tile-IO, {nprocs} procs)",
        headers=["model", "write MB/s", "sync max (s)", "engine events"],
        rows=rows,
        series=series,
        notes="analytic and hybrid must track detailed closely at a "
              "fraction of the cost",
    )


def test_ablation_collective_models(benchmark):
    result = run_once(benchmark, compare_models)
    record(result)
    a = result.series["analytic"]
    h = result.series["hybrid"]
    d = result.series["detailed"]
    # bandwidths agree within 2x in either direction
    assert 0.5 < a["bw"] / d["bw"] < 2.0
    assert 0.5 < h["bw"] / d["bw"] < 2.0
    # and the cheaper backends really are cheaper to simulate
    assert a["events"] < d["events"]
    assert a["events"] <= h["events"] <= d["events"]
