"""Figure 11: Flash I/O checkpoint bandwidth under four configurations.

Claims under test: ParColl improves the checkpoint moderately (the paper:
+38.5% — Flash's requests are large and few, so sync matters less than in
tile/BT patterns); the improvement also holds with a reduced aggregator
count; and disabling collective I/O entirely collapses bandwidth.
"""

from _common import record, run_once, scale

from repro.harness.figures import fig11_flashio


def test_fig11_flashio(benchmark):
    if scale() == "paper":
        nprocs, ngroups = 256, 32
    else:
        nprocs, ngroups = 64, 16
    result = run_once(benchmark, fig11_flashio, nprocs=nprocs,
                      ngroups=ngroups, scale=scale())
    record(result)
    s = result.series
    base = s["Cray (default aggs)"]
    pc = s[f"ParColl-{ngroups} (default aggs)"]
    nocoll = s["Cray w/o Coll"]
    # ParColl improves, moderately (tens of percent, not multiples).
    # At paper process counts our idealized (LogP) collectives underprice
    # large-P synchronization, compressing Flash's gain — require only
    # direction there; the magnitude check runs at the default scale.
    # (Recorded as a known deviation in EXPERIMENTS.md.)
    assert pc > (1.02 if scale() == "paper" else 1.1) * base
    # the non-collective path collapses
    assert nocoll < 0.6 * base
    # ParColl also helps with the reduced aggregator count
    reduced = [v for k, v in s.items()
               if k.startswith("ParColl") and "default" not in k]
    reduced_base = [v for k, v in s.items()
                    if k.startswith("Cray (") and "default" not in k]
    assert reduced[0] > reduced_base[0]
