"""Ablation B: intermediate-view design choices on the BT-IO pattern.

Three variants of ParColl on pattern (c):

* ``physical`` data path (the paper's design): grouping from logical
  offsets, exchange over the original physical segments;
* ``logical`` data path: exchange in logical space, sender-side
  translation — every aggregator write is physically scattered;
* intermediate views disabled: overlapping groups merge, degenerating
  toward the unpartitioned protocol.
"""

from functools import partial

from _common import record, run_once

from repro.harness.figures import FigureResult, PAPER_LUSTRE
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.harness.report import mb_per_s
from repro.parcoll import plan_partition
from repro.workloads import BTIOConfig, btio_program
from repro.workloads.btio import bt_filetype


def compare_paths(nprocs: int = 64, ngroups: int = 4) -> FigureResult:
    rows = []
    series = {}
    variants = [
        ("physical", {"parcoll_data_path": "physical"}),
        ("logical", {"parcoll_data_path": "logical"}),
        ("disabled", {"parcoll_intermediate_views": False}),
    ]
    for name, extra in variants:
        cfg = ExperimentConfig(nprocs=nprocs, lustre=dict(PAPER_LUSTRE))
        hints = {"protocol": "parcoll", "parcoll_ngroups": ngroups, **extra}
        wl = BTIOConfig(grid_points=144, nsteps=6, compute_seconds=0.05,
                        compute_jitter=0.03, hints=hints)
        res = run_experiment(cfg, partial(btio_program, wl))
        bw = mb_per_s(res.io_phase_bandwidth)
        series[name] = bw
        rows.append([name, round(bw, 0),
                     round(res.breakdown["io"]["max"], 3),
                     round(res.breakdown["sync"]["max"], 3)])
    # structural fact: disabling views collapses the grouping
    cfgbt = BTIOConfig(grid_points=144)
    extents = []
    for rank in range(nprocs):
        o, l = bt_filetype(cfgbt, nprocs, rank).segments()
        extents.append((int(o[0]), int(o[-1] + l[-1]), int(l.sum())))
    merged = plan_partition(extents, ngroups, allow_intermediate=False)
    rows.append(["(groups without views)", merged.ngroups, "-", "-"])
    series["merged_groups"] = merged.ngroups
    return FigureResult(
        figure="Ablation B",
        title=f"Intermediate-view variants on BT-IO ({nprocs} procs, "
              f"{ngroups} groups)",
        headers=["variant", "MB/s", "io max (s)", "sync max (s)"],
        rows=rows,
        series=series,
        notes="physical data path keeps writes dense; logical scatters "
              "them; without views the BT pattern cannot be partitioned",
    )


def test_ablation_intermediate_view(benchmark):
    result = run_once(benchmark, compare_paths)
    record(result)
    s = result.series
    # the physical data path must beat the logical (scattered) one
    assert s["physical"] > s["logical"]
    # without intermediate views, the fully interleaved pattern collapses
    # to a single group (no partitioning possible)
    assert s["merged_groups"] == 1
