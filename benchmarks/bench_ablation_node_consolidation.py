"""Ablation D: node-level request consolidation (paper Section 6 future work).

The paper proposes consolidating I/O requests from the cores of one node
to better use injection bandwidth in the multi-core era.  This ablation
quantifies the implemented extension on a many-cores-per-node machine:
cross-node message count must drop by ~the cores-per-node factor; the
bandwidth effect at the simulated scale is reported.
"""

from functools import partial

from _common import record, run_once

from repro.harness.figures import FigureResult, PAPER_LUSTRE
from repro.harness.report import mb_per_s
from repro.harness.runner import ExperimentConfig, run_experiment
from repro.workloads import TileIOConfig, tile_io_program


def compare_consolidation(nprocs: int = 64, cores: int = 4) -> FigureResult:
    rows = []
    series = {}
    for name, flag in (("off", False), ("on", True)):
        cfg = ExperimentConfig(nprocs=nprocs, cores_per_node=cores,
                               lustre=dict(PAPER_LUSTRE))
        wl = TileIOConfig(tile_rows=1024, tile_cols=768, element_size=64,
                          hints={"protocol": "parcoll",
                                 "parcoll_ngroups": 8,
                                 "cb_node_consolidation": flag})
        res = run_experiment(cfg, partial(tile_io_program, wl))
        # re-derive cross-node traffic from the run's network model
        series[name] = {
            "bw": mb_per_s(res.write_bandwidth),
            "messages": res.messages,
        }
        rows.append([name, round(series[name]["bw"], 0), res.messages,
                     round(res.breakdown["exchange"]["max"], 4)])
    return FigureResult(
        figure="Ablation D",
        title=f"Node-level consolidation (tile-IO, {nprocs} procs, "
              f"{cores} cores/node, ParColl-8)",
        headers=["consolidation", "write MB/s", "messages",
                 "exchange max (s)"],
        rows=rows,
        series=series,
        notes="Section-6 future work implemented: leaders merge their "
              "node's pieces before the inter-node exchange",
    )


def test_ablation_node_consolidation(benchmark):
    result = run_once(benchmark, compare_consolidation)
    record(result)
    on, off = result.series["on"], result.series["off"]
    # consolidation reduces message traffic without tanking bandwidth
    assert on["messages"] < off["messages"]
    assert on["bw"] > 0.5 * off["bw"]
