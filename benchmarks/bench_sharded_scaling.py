"""Sharded-DES scaling benchmark: wall time vs shard count.

Runs the detailed-physics shard probe
(:func:`repro.harness.hotpath.shard_scale_config` — parcoll tile-IO,
world collectives analytic, everything inside an FA subgroup at
per-message fidelity) at 4096 ranks with 1, 2 and 4 engine shards, and
checks three things:

1. **Bit-identity** — every sharded run must reproduce the unsharded
   run's virtual-time metrics (elapsed, bandwidth, message count)
   exactly.  A shard count is a partitioning choice, not a model
   change.  Dispatched-effect counts are deliberately *not* gated:
   they measure engine execution, and the worker/coordinator
   round-trip adds a few bookkeeping effects per file-system call that
   the single-engine run does not need.
2. **Speedup** — with 4 shards the run must beat the single-engine
   baseline by at least 2x.  The measured wall only shows this on a
   machine with enough cores to actually run the shards concurrently;
   on smaller hosts (CI containers are often pinned to one core) the
   gate falls back to the *critical path* — the slowest shard's own CPU
   seconds plus the coordinator's — which is what the wall becomes once
   each shard has a core to itself.  The JSON records both, along with
   the host's core count, so the numbers are honest either way.
3. **Scale** — one run at >= 16384 ranks must complete; its wall time
   and shard block are recorded as the Jaguar-direction headline.

Results land in ``BENCH_sharded_scaling.json`` at the repo root.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_sharded_scaling.py
    PYTHONPATH=src python benchmarks/bench_sharded_scaling.py --smoke

``--smoke`` shrinks the probe to 512 ranks (and skips the 16384-rank
run) so CI exercises the same code path in seconds; the bit-identity
assertions are exact in both modes, the speedup gate only applies at
full scale.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

from repro.harness.hotpath import run_shard_scale

HERE = pathlib.Path(__file__).resolve().parent
OUT = HERE.parent / "BENCH_sharded_scaling.json"

#: virtual-time metrics that must be identical at every shard count
_EXACT = ("elapsed_total", "write_bandwidth", "messages")

SPEEDUP_FLOOR = 2.0


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="512 ranks, no 16384-rank scale run (CI)")
    parser.add_argument("--nprocs", type=int, default=None,
                        help="override the probe's rank count")
    parser.add_argument("--scale-nprocs", type=int, default=16384,
                        help="rank count of the scale run (default 16384)")
    args = parser.parse_args(argv)

    nprocs = args.nprocs or (512 if args.smoke else 4096)
    cpus = _cpus()
    errors: list[str] = []
    rows = []
    for shards in (1, 2, 4):
        t0 = time.perf_counter()
        row = run_shard_scale(nprocs=nprocs, shards=shards)
        row["wall_s"] = round(time.perf_counter() - t0, 4)
        rows.append(row)
        sh = row["shard"] or {}
        print(f"{nprocs} ranks, {shards} shard(s): wall {row['wall_s']}s"
              + (f", max shard cpu {sh.get('max_shard_cpu')}s, "
                 f"{sh.get('sync_rounds')} sync rounds" if sh else ""))

    base = rows[0]
    for row in rows[1:]:
        for key in _EXACT:
            if row[key] != base[key]:
                errors.append(
                    f"MISMATCH at {row['shards']} shards: {key} "
                    f"{row[key]!r} != unsharded {base[key]!r}")

    # measured wall speedup, and the critical-path projection (slowest
    # shard's CPU seconds — the wall on a host with >= shards cores)
    four = rows[-1]
    wall_speedup = round(base["wall_s"] / four["wall_s"], 2) \
        if four["wall_s"] else None
    crit = (four["shard"] or {}).get("max_shard_cpu")
    crit_speedup = round(base["wall_s"] / crit, 2) if crit else None
    effective = wall_speedup if cpus >= 4 else (crit_speedup or wall_speedup)
    if not args.smoke and effective is not None \
            and effective < SPEEDUP_FLOOR:
        errors.append(
            f"4-shard speedup {effective}x below the {SPEEDUP_FLOOR}x "
            f"floor (wall {wall_speedup}x, critical path "
            f"{crit_speedup}x on {cpus} core(s))")

    scale = None
    if not args.smoke:
        t0 = time.perf_counter()
        scale = run_shard_scale(nprocs=args.scale_nprocs, shards=4)
        scale["wall_s"] = round(time.perf_counter() - t0, 4)
        print(f"scale run: {args.scale_nprocs} ranks, 4 shards, "
              f"wall {scale['wall_s']}s")

    payload = {
        "benchmark": "sharded_scaling",
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": cpus,
        "nprocs": nprocs,
        "bit_identity_ok": not errors
        or not any("MISMATCH" in e for e in errors),
        "results": rows,
        "wall_speedup_4_shards": wall_speedup,
        "critical_path_speedup_4_shards": crit_speedup,
    }
    if scale is not None:
        payload["scale_run"] = scale
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT}")

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    if wall_speedup is not None:
        print(f"headline: 4 shards {wall_speedup}x wall"
              + (f" ({crit_speedup}x critical path on {cpus} core(s))"
                 if crit_speedup else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
