"""End-to-end throughput of the simulation service: cold vs warm vs
coalesced.

Hosts a real :class:`~repro.service.server.SimulationServer` on a
background thread and drives it with concurrent
:class:`~repro.service.client.ServiceClient` threads across two
tenants, measuring three regimes:

* ``cold``      — N distinct descriptors, empty cache: every job
  executes (jobs/sec is dominated by simulation time + pool dispatch);
* ``warm``      — the same N descriptors resubmitted: every job is a
  submit-time cache hit (jobs/sec measures pure service overhead:
  HTTP parse, descriptor validation, cache probe);
* ``duplicate`` — 2 tenants x N submissions of the *same* descriptors
  racing: coalescing + the warm cache answer all but the first
  executions (the measured coalescing ratio is reported).

Every wire result is checked bit-identical to direct
``ExperimentExecutor`` execution (simulated state only — host-side
perf wall-clock is excluded).  Results land in
``BENCH_service_throughput.json`` at the repo root.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke

``--smoke`` is the CI gate: a tiny duplicate pair from two tenants must
yield exactly one execution plus one coalesce-or-warm-hit, bit-identical
results, and a clean shutdown.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro.harness.parallel import ExperimentExecutor, ExperimentTask, RunCache
from repro.harness.runner import ExperimentConfig
from repro.service import ServerThread, ServiceClient, result_to_dict
from repro.workloads import TileIOConfig

WORKERS = int(os.environ.get("REPRO_JOBS", "4") or 4)
POINTS = 8
OUT = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_service_throughput.json"


def build_tasks(n: int = POINTS) -> list[ExperimentTask]:
    """n distinct small experiment points (distinct cache keys)."""
    tasks = []
    for i in range(n):
        wl = TileIOConfig(tile_rows=16 + 4 * i, tile_cols=16,
                          element_size=16)
        cfg = ExperimentConfig(
            nprocs=8, lustre={"n_osts": 4, "default_stripe_count": 4})
        tasks.append(ExperimentTask(cfg, "tile_io", wl))
    return tasks


def sim_state(doc: dict) -> dict:
    """The deterministic part of a wire result (drops host wall-clock)."""
    return {k: v for k, v in doc.items() if k != "perf"}


def submit_and_wait(client: ServiceClient, tenant: str,
                    task: ExperimentTask) -> dict:
    job = client.submit(task, tenant=tenant, retries=5)
    return client.wait(job["id"], timeout=300)


def drive(client: ServiceClient,
          submissions: list[tuple[str, ExperimentTask]],
          threads: int) -> tuple[float, list[dict]]:
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=threads) as pool:
        outs = list(pool.map(
            lambda s: submit_and_wait(client, s[0], s[1]), submissions))
    return time.perf_counter() - t0, outs


def check_identical(outs: list[dict],
                    expected: dict[int, dict],
                    keys: list[int]) -> bool:
    for out, key in zip(outs, keys):
        if out["state"] != "done":
            return False
        if sim_state(out["result"]) != expected[key]:
            return False
    return True


def run_bench() -> int:
    tasks = build_tasks()
    keys = [hash(t.cache_key()) for t in tasks]
    direct = ExperimentExecutor(jobs=1, cache=False).run_many(tasks)
    expected = {k: sim_state(json.loads(json.dumps(result_to_dict(r))))
                for k, r in zip(keys, direct)}

    with tempfile.TemporaryDirectory() as tmp:
        with ServerThread(workers=WORKERS, pool="process",
                          cache=RunCache(tmp), max_queue=256) as srv:
            client = ServiceClient(srv.url)

            cold_subs = [("acme", t) for t in tasks]
            cold_s, cold_outs = drive(client, cold_subs, threads=POINTS)
            cold_ok = check_identical(cold_outs, expected, keys)
            print(f"cold: {len(tasks)} jobs in {cold_s:6.3f}s "
                  f"({len(tasks) / cold_s:6.1f} jobs/s)")

            warm_subs = [("zeta", t) for t in tasks]
            warm_s, warm_outs = drive(client, warm_subs, threads=POINTS)
            warm_ok = check_identical(warm_outs, expected, keys)
            print(f"warm: {len(tasks)} jobs in {warm_s:6.3f}s "
                  f"({len(tasks) / warm_s:6.1f} jobs/s)")
            mid = client.metrics()

        # duplicate regime on a fresh server/cache: 2 tenants race the
        # same descriptors, so all but the first execution of each key
        # is answered by coalescing or the just-filled cache
        with tempfile.TemporaryDirectory() as tmp2, \
                ServerThread(workers=WORKERS, pool="process",
                             cache=RunCache(tmp2),
                             max_queue=256) as srv:
            client = ServiceClient(srv.url)
            dup_subs = [(tenant, t) for tenant in ("acme", "zeta")
                        for t in tasks]
            dup_s, dup_outs = drive(client, dup_subs,
                                    threads=len(dup_subs))
            dup_ok = check_identical(dup_outs, expected, keys + keys)
            metrics = client.metrics()

    counters = metrics["counters"]
    coalesce_ratio = ((counters["coalesced"] + counters["cache_hits"])
                      / max(1, counters["accepted"]))
    print(f"duplicate: {len(dup_subs)} jobs in {dup_s:6.3f}s, "
          f"{counters['executions']} executions, "
          f"{counters['coalesced']} coalesced, "
          f"{counters['cache_hits']} warm hits "
          f"(coalescing ratio {coalesce_ratio:.2f})")

    identical = cold_ok and warm_ok and dup_ok
    if not identical:
        print("FAIL: service results disagree with direct execution",
              file=sys.stderr)
    if counters["executions"] != len(tasks):
        print(f"FAIL: expected {len(tasks)} executions in the duplicate "
              f"regime, measured {counters['executions']}",
              file=sys.stderr)
        identical = False

    out = {
        "benchmark": "service_throughput",
        "workload": f"{POINTS} distinct tile-IO points, 2 tenants",
        "python": platform.python_version(),
        "host_cpus": os.cpu_count() or 1,
        "workers": WORKERS,
        "points": POINTS,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "duplicate_s": round(dup_s, 3),
        "cold_jobs_per_s": round(len(tasks) / cold_s, 1),
        "warm_jobs_per_s": round(len(tasks) / warm_s, 1),
        "duplicate_jobs_per_s": round(len(dup_subs) / dup_s, 1),
        "duplicate_executions": counters["executions"],
        "duplicate_coalesced": counters["coalesced"],
        "duplicate_cache_hits": counters["cache_hits"],
        "coalescing_ratio": round(coalesce_ratio, 3),
        "warm_cache_hits_after_cold": mid["counters"]["cache_hits"],
        "bit_identical_vs_direct": identical,
        "note": ("warm jobs/sec measures pure service overhead (parse + "
                 "validate + cache probe); cold is bounded by simulation "
                 "time over `workers` pool slots"),
    }
    OUT.write_text(json.dumps(out, indent=2) + "\n")
    print(f"\nwarm/cold speedup {cold_s / warm_s:.1f}x; wrote {OUT}")
    return 0 if identical else 1


def run_smoke() -> int:
    """The CI `service-smoke` gate: duplicate pair, one execution."""
    task = build_tasks(1)[0]
    direct = ExperimentExecutor(jobs=1, cache=False).run(task)
    expected = sim_state(json.loads(json.dumps(result_to_dict(direct))))

    with tempfile.TemporaryDirectory() as tmp:
        with ServerThread(workers=2, pool="process",
                          cache=RunCache(tmp)) as srv:
            client = ServiceClient(srv.url)
            _, outs = drive(client, [("acme", task), ("zeta", task)],
                            threads=2)
            metrics = client.metrics()
        # leaving the context manager is the clean-shutdown check:
        # ServerThread.stop() drains and joins the server thread
    counters = metrics["counters"]
    failures = []
    if [o["state"] for o in outs] != ["done", "done"]:
        failures.append(f"job states: {[o['state'] for o in outs]}")
    if counters["executions"] != 1:
        failures.append(f"expected 1 execution, measured "
                        f"{counters['executions']}")
    if counters["coalesced"] + counters["cache_hits"] != 1:
        failures.append("expected the duplicate to coalesce or hit the "
                        f"warm cache, counters={counters}")
    for out in outs:
        if sim_state(out["result"]) != expected:
            failures.append("wire result differs from direct execution")
            break
    if failures:
        for f in failures:
            print(f"SMOKE FAIL: {f}", file=sys.stderr)
        return 1
    print(f"service smoke OK: 2 tenants, 1 execution, "
          f"{counters['coalesced']} coalesced + "
          f"{counters['cache_hits']} warm hit, clean shutdown")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if "--smoke" in args:
        return run_smoke()
    return run_bench()


if __name__ == "__main__":
    sys.exit(main())
